/**
 * @file
 * Software fault injection on a Network (step 2 of FIdelity's flow).
 *
 * One experiment: pick a layer and an FF category, apply the category's
 * software fault model to the layer's (cached) golden execution,
 * propagate the corrupted layer output through the rest of the network,
 * and classify the final output with the application's correctness
 * metric.  Global-control faults are classified as system failures
 * without propagation (Prob_SWmask = 0), as the framework defines.
 */

#ifndef FIDELITY_CORE_INJECTOR_HH
#define FIDELITY_CORE_INJECTOR_HH

#include <cstdint>
#include <functional>

#include "core/fault_models.hh"
#include "nn/batched.hh"
#include "nn/incremental.hh"
#include "nn/network.hh"
#include "sim/result_cache.hh"
#include "sim/rng.hh"

namespace fidelity
{

/**
 * Application correctness metric: true when the faulty final output is
 * acceptably close to the golden one (the fault is masked).
 */
using CorrectnessFn =
    std::function<bool(const Tensor &golden, const Tensor &faulty)>;

/** Result of one software fault-injection experiment. */
struct InjectionRecord
{
    FFCategory category = FFCategory::OutputPsum;
    NodeId node = 0;
    bool masked = true;
    bool globalFailure = false;
    int numFaultyNeurons = 0;
    double maxAbsDelta = 0.0; //!< layer-level perturbation magnitude

    /** Incremental engine only: the delta died before the output and
     *  downstream layers were skipped (the early masking exit). */
    bool earlyExit = false;

    /** Fault-site fingerprint (0 unless cacheEligible); see
     *  faultSiteFingerprint() for what it pins. */
    std::uint64_t fingerprint = 0;

    /** The experiment reached the forward pass with a result cache
     *  attached (GlobalControl and model-masked faults never do). */
    bool cacheEligible = false;

    /** The forward pass was skipped: the outcome came from the cache. */
    bool cacheHit = false;
};

/** Fault-injection engine bound to one network + input. */
class Injector
{
  public:
    /**
     * Caches the golden activations of the network on this input.
     * @param net Target network (already calibrated if integer mode).
     * @param input Network input.
     * @param cfg Accelerator configuration (RF-pattern geometry).
     */
    Injector(const Network &net, Tensor input, const NvdlaConfig &cfg);

    const Tensor &goldenOutput() const;
    const std::vector<Tensor> &goldenActs() const { return acts_; }

    /**
     * Run one experiment at the given MAC node with the given model.
     *
     * Safe to call concurrently from multiple threads against the same
     * Injector: the golden activations are only read, forwardFrom
     * allocates per-call scratch, and each caller supplies its own Rng
     * stream.  The constructor must have completed first (it warms the
     * layers' precision-converted weight caches).
     *
     * @param clamp_abs When > 0, model the value-bounding co-design
     *        of Key result 5: a hardware range checker saturates every
     *        written-back neuron into [-clamp_abs, clamp_abs],
     *        saturates infinities to the bound of their own sign, and
     *        flushes NaN to zero (see boundValue), limiting the
     *        perturbation a fault can inject.
     * @param engine Optional incremental re-execution engine (one per
     *        calling thread): the corrupted-cone fast path, bit-
     *        identical to the dense recompute.  Null selects the dense
     *        Network::forwardFrom path.
     */
    InjectionRecord inject(NodeId node, FFCategory cat,
                           const CorrectnessFn &correct, Rng &rng,
                           double clamp_abs = 0.0,
                           IncrementalEngine *engine = nullptr) const;

    /**
     * Run `count` experiments at one (node, category) cell, carrying
     * surviving injections through the network in SIMD-lane batches of
     * up to `batchWidth` via the fault-batched engine.  Sample
     * identity is untouched relative to `count` sequential inject()
     * calls: the fault models draw from `rng` in the same order, the
     * result cache is probed per injection *before* batching, and
     * every record field except cacheHit (within-batch duplicate
     * sites compute instead of hitting) is identical — outputs are
     * bit-identical, so masked/earlyExit agree.  A single trailing
     * survivor runs on the scalar engine `seng` instead of spinning a
     * whole batch.  Writes the records to `recs[0..count)` in sample
     * order and returns count.  Thread-safe under the same contract
     * as inject() (engines are per-caller).
     */
    std::size_t injectBatch(NodeId node, FFCategory cat,
                            const CorrectnessFn &correct, Rng &rng,
                            int count, double clamp_abs, int batchWidth,
                            BatchedEngine &beng, IncrementalEngine &seng,
                            InjectionRecord *recs) const;

    const FaultModels &models() const { return models_; }
    const Network &network() const { return net_; }

    /**
     * Attach a fault-site memo table.  Subsequent inject() calls probe
     * it before paying the forward pass and store their outcome after;
     * the sampled fault identity is unaffected (the fault model and its
     * rng draws run either way), only the propagation is skipped on a
     * hit.  Computes this injector's context digest — a conservative
     * hash over everything a forward pass reads: network name and
     * precision, the input bits, every layer's name/kind/precision,
     * every golden activation bit, every MAC weight bit and quant
     * param — plus `salt`.  Two injectors sharing a cache can only
     * exchange outcomes when their digests match, so a different
     * input, weight set, or quantisation can never serve a stale
     * entry.  Pass a distinct `salt` per correctness metric when one
     * cache is shared across metrics (the CorrectnessFn is opaque and
     * cannot be hashed).  Pass nullptr to detach.
     */
    void attachResultCache(ResultCache *cache, std::uint64_t salt = 0);

    /** Context digest of the attached cache (0 when detached). */
    std::uint64_t resultCacheContext() const { return cacheContext_; }

  private:
    const Network &net_;
    Tensor input_;
    std::vector<Tensor> acts_;
    FaultModels models_;
    ResultCache *cache_ = nullptr;
    std::uint64_t cacheContext_ = 0;
};

/**
 * 64-bit fault-site fingerprint: the injector context digest (see
 * attachResultCache) mixed with the target node, fault category, the
 * value-bound knob, and the exact per-neuron corruption — coordinates,
 * written (post-bounding) value bits, and displaced golden value bits.
 * Equal fingerprints identify injections whose forward passes read and
 * write identical values, hence produce identical outcomes.
 */
std::uint64_t faultSiteFingerprint(std::uint64_t context, NodeId node,
                                   FFCategory cat, double clamp_abs,
                                   const FaultApplication &app,
                                   const Tensor &golden);

/**
 * Top-1 classification metric: the predicted class (argmax of the
 * final output) must match.  NaN elements are treated as invalid
 * scores that can never win the argmax — a NaN only breaks the match
 * when it displaces the golden top-1 — and infinities order as usual.
 * When every element of an output is NaN its prediction is undefined;
 * two undefined predictions compare equal.
 */
bool top1Match(const Tensor &golden, const Tensor &faulty);

/**
 * Range-checker co-design transfer function (Key result 5): saturate a
 * written-back value into [-clamp_abs, clamp_abs].  Infinities keep
 * their sign (saturating to the matching bound); NaN — which has no
 * meaningful sign — is flushed to zero by policy.
 */
float boundValue(float v, double clamp_abs);

} // namespace fidelity

#endif // FIDELITY_CORE_INJECTOR_HH
