#include "core/validation.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"
#include "tensor/bitops.hh"

namespace fidelity
{

namespace
{

/** Semantic equality: NaNs match NaNs; +0 matches -0. */
bool
sameValue(float a, float b)
{
    if (std::isnan(a) && std::isnan(b))
        return true;
    return a == b;
}

} // namespace

CategoryValidation &
ValidationReport::forCategory(FFCategory cat)
{
    return perCategory[static_cast<int>(cat)];
}

const CategoryValidation &
ValidationReport::forCategory(FFCategory cat) const
{
    return perCategory[static_cast<int>(cat)];
}

FFCategory
categoryOfFFClass(FFClass cls)
{
    switch (cls) {
      case FFClass::FetchInput:
        return FFCategory::PreBufInput;
      case FFClass::FetchWeight:
        return FFCategory::PreBufWeight;
      case FFClass::OperandInput:
        return FFCategory::OperandInput;
      case FFClass::WeightStage:
      case FFClass::WeightHold:
        return FFCategory::OperandWeight;
      case FFClass::Psum:
      case FFClass::OutputReg:
      case FFClass::BiasReg:
        return FFCategory::OutputPsum;
      case FFClass::LocalValid:
      case FFClass::LocalMuxSel:
        return FFCategory::LocalControl;
      case FFClass::GlobalConfig:
      case FFClass::GlobalCounter:
        return FFCategory::GlobalControl;
    }
    panic("unknown FFClass");
}

Validator::Validator(const NvdlaConfig &cfg, const MacLayer &layer,
                     std::vector<const Tensor *> ins)
    : cfg_(cfg), layer_(layer), ins_(std::move(ins))
{
    golden_ = layer_.forward(ins_);
    if (const auto *conv = dynamic_cast<const Conv2D *>(&layer_)) {
        el_ = engineLayerFromConv(*conv, *ins_[0]);
    } else if (const auto *fc = dynamic_cast<const FC *>(&layer_)) {
        el_ = engineLayerFromFC(*fc, *ins_[0]);
    } else if (const auto *mm = dynamic_cast<const MatMulAB *>(&layer_)) {
        el_ = engineLayerFromMatMul(*mm, *ins_[0], *ins_[1]);
    } else {
        panic("Validator supports Conv2D, FC and MatMulAB layers");
    }
    fi_ = std::make_unique<NvdlaFi>(cfg_, el_, *ins_[0]);

    // The engine's fault-free output must equal the nn layer's output
    // bit for bit; everything downstream relies on it.
    const Tensor &eo = fi_->golden().output;
    panic_if(eo.size() != golden_.size(), "golden shape mismatch");
    for (std::size_t i = 0; i < golden_.size(); ++i)
        panic_if(!sameValue(eo[i], golden_[i]),
                 "engine/nn golden mismatch at ", i, " for layer ",
                 layer_.name());
}

std::int64_t
Validator::inputElemIndex(std::int64_t pos, std::int64_t step) const
{
    if (el_.kind == EngineLayer::Kind::MatMul)
        return pos * el_.red + step;
    std::int64_t plane =
        static_cast<std::int64_t>(el_.outH) * el_.outW;
    std::int64_t n = pos / plane;
    std::int64_t rem = pos % plane;
    std::int64_t oh = rem / el_.outW;
    std::int64_t ow = rem % el_.outW;
    std::int64_t kernel = static_cast<std::int64_t>(el_.kh) * el_.kw;
    std::int64_t ci = step / kernel;
    std::int64_t krem = step % kernel;
    std::int64_t ki = krem / el_.kw;
    std::int64_t kj = krem % el_.kw;
    std::int64_t ih = oh * el_.stride - el_.pad + ki * el_.dilation;
    std::int64_t iw = ow * el_.stride - el_.pad + kj * el_.dilation;
    if (ih < 0 || ih >= el_.inH || iw < 0 || iw >= el_.inW)
        return -1;
    return ((n * el_.inH + ih) * el_.inW + iw) * el_.inC + ci;
}

std::size_t
Validator::weightSubIndex(std::int64_t chan, std::int64_t step) const
{
    if (el_.kind == EngineLayer::Kind::Conv) {
        std::int64_t kernel = static_cast<std::int64_t>(el_.kh) * el_.kw;
        std::int64_t ci = step / kernel;
        std::int64_t krem = step % kernel;
        std::int64_t ki = krem / el_.kw;
        std::int64_t kj = krem % el_.kw;
        return static_cast<std::size_t>(
            ((ki * el_.kw + kj) * el_.inC + ci) * el_.outC + chan);
    }
    if (const auto *mm = dynamic_cast<const MatMulAB *>(&layer_)) {
        // The nn substitution index is an offset into the B tensor.
        if (mm->transB())
            return static_cast<std::size_t>(chan * el_.red + step);
        return static_cast<std::size_t>(step * el_.cols + chan);
    }
    // FC: weights are [in_c][units] flat, identical to the engine.
    return static_cast<std::size_t>(step * el_.cols + chan);
}

std::size_t
Validator::outputFlat(std::int64_t pos, std::int64_t chan) const
{
    return static_cast<std::size_t>(pos * el_.channels() + chan);
}

void
Validator::appendIfChanged(Prediction &pred, std::size_t flat,
                           float value) const
{
    if (sameValue(golden_[flat], value))
        return;
    pred.flats.push_back(flat);
    pred.values.push_back(value);
}

Prediction
Validator::predict(const FaultSite &site) const
{
    Prediction pred;
    const SiteContext ctx = fi_->context(site);
    const int macs = cfg_.macs();
    const int t = cfg_.t;
    const int bit = site.ff.bit;
    const int unit = site.ff.unit;
    const Precision prec = el_.precision;
    const std::int64_t red = el_.reduction();
    const std::int64_t out_c = el_.channels();
    const std::int64_t n_drain = ctx.blkLen * macs;

    switch (site.ff.cls) {
      case FFClass::GlobalConfig:
      case FFClass::GlobalCounter:
        pred.kind = Prediction::Kind::GlobalFailure;
        return pred;

      case FFClass::FetchInput: {
        std::int64_t num_i =
            static_cast<std::int64_t>(ins_[0]->size());
        if (ctx.phase != EnginePhase::FetchI || ctx.fetch < 1 ||
            ctx.fetch > num_i)
            return pred;
        std::size_t elem = static_cast<std::size_t>(ctx.fetch - 1);
        float v = (*ins_[0])[elem];
        OperandSub sub;
        sub.kind = OperandSub::Kind::Input;
        sub.flatIndex = elem;
        sub.value = FaultModels::flipStoredOperandMask(
            v, prec, layer_.inputQuant(), site.ff.mask());
        for (const NeuronIndex &n : layer_.inputConsumers(ins_, elem))
            appendIfChanged(pred, golden_.offset(n.n, n.h, n.w, n.c),
                            layer_.computeNeuron(ins_, n, &sub));
        break;
      }

      case FFClass::FetchWeight: {
        std::int64_t num_w =
            static_cast<std::int64_t>(el_.weights.size());
        if (ctx.phase != EnginePhase::FetchW || ctx.fetch < 1 ||
            ctx.fetch > num_w)
            return pred;
        std::size_t engine_widx =
            static_cast<std::size_t>(ctx.fetch - 1);
        // Decode the engine layout back to (step, chan) and map to the
        // nn substitution index.
        std::int64_t chan = static_cast<std::int64_t>(
            engine_widx % el_.channels());
        std::int64_t step = static_cast<std::int64_t>(
            engine_widx / el_.channels());
        // For conv the engine layout is [kh][kw][ci][oc]; the "step"
        // recovered this way is the (ki, kj, ci) group index, which is
        // not the reduction step, so recompute the nn index directly.
        std::size_t nn_widx;
        if (el_.kind == EngineLayer::Kind::Conv) {
            nn_widx = engine_widx; // identical layouts
        } else {
            nn_widx = weightSubIndex(chan, step);
        }
        float v = layer_.weightAt(ins_, nn_widx);
        OperandSub sub;
        sub.kind = OperandSub::Kind::Weight;
        sub.flatIndex = nn_widx;
        sub.value = FaultModels::flipStoredOperandMask(
            v, prec, layer_.weightQuant(), site.ff.mask());
        for (const NeuronIndex &n : layer_.weightConsumers(ins_, nn_widx))
            appendIfChanged(pred, golden_.offset(n.n, n.h, n.w, n.c),
                            layer_.computeNeuron(ins_, n, &sub));
        break;
      }

      case FFClass::OperandInput: {
        if (ctx.phase != EnginePhase::Mac || ctx.pos >= ctx.blkLen)
            return pred;
        std::int64_t pos = ctx.blkStart + ctx.pos;
        std::int64_t elem = inputElemIndex(pos, ctx.step);
        float v = elem >= 0
            ? (*ins_[0])[static_cast<std::size_t>(elem)] : 0.0f;
        OperandSub sub;
        sub.kind = OperandSub::Kind::Input;
        sub.termIndex = static_cast<int>(ctx.step);
        sub.value = FaultModels::flipStoredOperandMask(
            v, prec, layer_.inputQuant(), site.ff.mask());
        for (std::int64_t chan = ctx.cg * macs;
             chan < std::min<std::int64_t>((ctx.cg + 1) * macs, out_c);
             ++chan) {
            std::size_t flat = outputFlat(pos, chan);
            NeuronIndex n = golden_.indexOf(flat);
            appendIfChanged(pred, flat,
                            layer_.computeNeuron(ins_, n, &sub));
        }
        break;
      }

      case FFClass::WeightStage:
      case FFClass::WeightHold: {
        std::int64_t first_p;
        if (site.ff.cls == FFClass::WeightStage) {
            // Effective only while the staged value transfers to the
            // hold register; it then covers the whole block.
            if (ctx.phase != EnginePhase::LoadHold)
                return pred;
            first_p = 0;
        } else {
            if (ctx.phase != EnginePhase::Mac || ctx.pos >= ctx.blkLen)
                return pred;
            first_p = ctx.pos;
        }
        std::int64_t chan = ctx.cg * macs + unit;
        if (chan >= out_c || ctx.step >= red)
            return pred;
        std::size_t nn_widx = weightSubIndex(chan, ctx.step);
        float v = layer_.weightAt(ins_, nn_widx);
        OperandSub sub;
        sub.kind = OperandSub::Kind::Weight;
        sub.flatIndex = nn_widx;
        sub.value = FaultModels::flipStoredOperandMask(
            v, prec, layer_.weightQuant(), site.ff.mask());
        for (std::int64_t p = first_p; p < ctx.blkLen; ++p) {
            std::size_t flat = outputFlat(ctx.blkStart + p, chan);
            NeuronIndex n = golden_.indexOf(flat);
            appendIfChanged(pred, flat,
                            layer_.computeNeuron(ins_, n, &sub));
        }
        break;
      }

      case FFClass::Psum: {
        int m = unit / t;
        std::int64_t q = unit % t;
        std::int64_t chan = ctx.cg * macs + m;
        if (chan >= out_c || q >= ctx.blkLen)
            return pred;
        std::int64_t flip_step;
        switch (ctx.phase) {
          case EnginePhase::Mac:
            flip_step = q < ctx.pos ? ctx.step + 1 : ctx.step;
            break;
          case EnginePhase::LoadStage:
          case EnginePhase::LoadHold:
            flip_step = ctx.step;
            break;
          case EnginePhase::Drain: {
            std::int64_t j_slot = q * macs + m;
            if (j_slot < ctx.drain - 1)
                return pred; // already drained
            flip_step = red;
            break;
          }
          default:
            return pred;
        }
        OperandSub sub;
        sub.kind = OperandSub::Kind::PsumFlip;
        sub.flatIndex = static_cast<std::size_t>(
            std::min<std::int64_t>(flip_step, red));
        sub.bit = bit;
        sub.extraMask = site.ff.extraMask;
        std::size_t flat = outputFlat(ctx.blkStart + q, chan);
        NeuronIndex n = golden_.indexOf(flat);
        appendIfChanged(pred, flat, layer_.computeNeuron(ins_, n, &sub));
        break;
      }

      case FFClass::OutputReg: {
        if (ctx.phase != EnginePhase::Drain || ctx.drain < 2 ||
            ctx.drain > n_drain + 1)
            return pred;
        std::int64_t j = ctx.drain - 2;
        std::int64_t chan = ctx.cg * macs + (j % macs);
        if (chan >= out_c)
            return pred;
        std::size_t flat = outputFlat(ctx.blkStart + j / macs, chan);
        float y = golden_[flat];
        appendIfChanged(pred, flat,
                        FaultModels::flipStoredOutputMask(
                            y, prec, layer_.outputQuant(),
                            site.ff.mask()));
        break;
      }

      case FFClass::BiasReg: {
        if (ctx.phase != EnginePhase::Drain || ctx.drain < 1 ||
            ctx.drain > n_drain || !layer_.hasBias())
            return pred;
        std::int64_t j = ctx.drain - 1;
        std::int64_t chan = ctx.cg * macs + (j % macs);
        if (chan >= out_c)
            return pred;
        float b = el_.bias[static_cast<std::size_t>(chan)];
        Repr r = prec == Precision::FP16 ? Repr::FP16 : Repr::FP32;
        OperandSub sub;
        sub.kind = OperandSub::Kind::Bias;
        sub.value = flipBits(b, r, site.ff.mask());
        std::size_t flat = outputFlat(ctx.blkStart + j / macs, chan);
        NeuronIndex n = golden_.indexOf(flat);
        appendIfChanged(pred, flat, layer_.computeNeuron(ins_, n, &sub));
        break;
      }

      case FFClass::LocalValid: {
        if (ctx.phase != EnginePhase::Drain || ctx.drain < 2 ||
            ctx.drain > n_drain + 1)
            return pred;
        std::int64_t j = ctx.drain - 2;
        if (unit != static_cast<int>(j % macs))
            return pred;
        std::int64_t chan = ctx.cg * macs + (j % macs);
        if (chan >= out_c)
            return pred;
        std::size_t flat = outputFlat(ctx.blkStart + j / macs, chan);
        // A dropped writeback leaves the buffer's previous content —
        // architecturally a non-deterministic value; invisible when
        // the stale content happens to equal the result.
        if (golden_[flat] == 0.0f)
            return pred;
        pred.deterministicValues = false;
        pred.flats.push_back(flat);
        break;
      }

      case FFClass::LocalMuxSel: {
        if (ctx.phase != EnginePhase::Drain || ctx.drain < 1 ||
            ctx.drain > n_drain || !layer_.hasBias())
            return pred;
        std::int64_t j = ctx.drain - 1;
        std::int64_t chan = ctx.cg * macs + (j % macs);
        if (chan >= out_c)
            return pred;
        // Bias path deselected: the neuron writes back without bias.
        OperandSub sub;
        sub.kind = OperandSub::Kind::Bias;
        sub.value = 0.0f;
        std::size_t flat = outputFlat(ctx.blkStart + j / macs, chan);
        NeuronIndex n = golden_.indexOf(flat);
        appendIfChanged(pred, flat, layer_.computeNeuron(ins_, n, &sub));
        break;
      }
    }

    if (pred.flats.empty())
        return pred; // nothing changed -> masked
    pred.kind = Prediction::Kind::Neurons;

    // Generation order: sort multi-neuron predictions by the golden
    // writeback cycle, the order the scheduling algorithm produces
    // output neurons.
    if (pred.flats.size() > 1) {
        const auto &wb = fi_->golden().writebackCycle;
        std::vector<std::size_t> order(pred.flats.size());
        for (std::size_t i = 0; i < order.size(); ++i)
            order[i] = i;
        std::sort(order.begin(), order.end(),
                  [&](std::size_t a, std::size_t b) {
                      return wb[pred.flats[a]] < wb[pred.flats[b]];
                  });
        Prediction sorted = pred;
        for (std::size_t i = 0; i < order.size(); ++i) {
            sorted.flats[i] = pred.flats[order[i]];
            if (!pred.values.empty())
                sorted.values[i] = pred.values[order[i]];
        }
        pred = std::move(sorted);
    }
    return pred;
}

CaseResult
Validator::runOneDirected(FFClass cls, Rng &rng)
{
    CaseResult cr;
    cr.site = fi_->sampleSiteDirected(cls, rng);
    return finishCase(cr);
}

bool
Validator::globalSiteActive(const FaultSite &site) const
{
    if (site.ff.cls == FFClass::GlobalConfig)
        return true;
    if (site.ff.cls != FFClass::GlobalCounter)
        return false;
    EnginePhase ph = fi_->context(site).phase;
    switch (static_cast<CounterReg>(site.ff.unit)) {
      case CounterReg::Fetch:
        return ph == EnginePhase::FetchW || ph == EnginePhase::FetchI;
      case CounterReg::ChanGroup:
      case CounterReg::Block:
        return ph != EnginePhase::FetchW && ph != EnginePhase::FetchI &&
               ph != EnginePhase::Done;
      case CounterReg::RedStep:
        return ph == EnginePhase::LoadStage ||
               ph == EnginePhase::LoadHold || ph == EnginePhase::Mac;
      case CounterReg::Pos:
        return ph == EnginePhase::Mac;
      case CounterReg::Drain:
        return ph == EnginePhase::Drain;
      case CounterReg::NumRegs:
        break;
    }
    return false;
}

CaseResult
Validator::runOne(Rng &rng)
{
    CaseResult cr;
    cr.site = fi_->sampleSite(rng);
    return finishCase(cr);
}

CaseResult
Validator::finishCase(CaseResult cr)
{
    cr.category = categoryOfFFClass(cr.site.ff.cls);

    RtlOutcome rtl = fi_->inject(cr.site);
    Prediction pred = predict(cr.site);

    cr.rtlMasked = rtl.masked();
    cr.timeout = rtl.timeout;
    cr.anomaly = rtl.anomaly;
    cr.predMasked = pred.kind == Prediction::Kind::Masked;
    cr.rtlCount = static_cast<int>(rtl.faulty.size());
    cr.predCount = static_cast<int>(pred.flats.size());

    if (pred.kind != Prediction::Kind::Neurons || rtl.timeout ||
        rtl.anomaly)
        return cr;

    // Set comparison.
    std::vector<std::size_t> rtl_flats;
    rtl_flats.reserve(rtl.faulty.size());
    for (const FaultyNeuron &f : rtl.faulty)
        rtl_flats.push_back(f.flat);
    std::vector<std::size_t> pred_sorted = pred.flats;
    std::sort(pred_sorted.begin(), pred_sorted.end());
    cr.setMatch = pred_sorted == rtl_flats;
    if (!cr.setMatch)
        return cr;

    // Value comparison (datapath models are bit-exact).
    if (pred.deterministicValues) {
        cr.valueMatch = true;
        for (std::size_t i = 0; i < pred.flats.size(); ++i) {
            auto it = std::lower_bound(rtl_flats.begin(),
                                       rtl_flats.end(), pred.flats[i]);
            std::size_t k = static_cast<std::size_t>(
                it - rtl_flats.begin());
            if (!sameValue(rtl.faulty[k].faulty, pred.values[i]))
                cr.valueMatch = false;
        }
    }

    // Order comparison: the faulty run must produce the neurons in the
    // predicted generation order.
    cr.orderMatch = true;
    std::uint64_t prev = 0;
    for (std::size_t flat : pred.flats) {
        auto it = std::lower_bound(rtl_flats.begin(), rtl_flats.end(),
                                   flat);
        const FaultyNeuron &f =
            rtl.faulty[static_cast<std::size_t>(it - rtl_flats.begin())];
        if (f.wbCycle < prev)
            cr.orderMatch = false;
        prev = f.wbCycle;
    }
    return cr;
}

ValidationReport
Validator::run(int samples, Rng &rng)
{
    ValidationReport report;
    for (int i = 0; i < samples; ++i) {
        CaseResult cr = runOne(rng);
        CategoryValidation &cat = report.forCategory(cr.category);
        cat.cases += 1;
        report.totalCases += 1;
        if (cr.timeout) {
            cat.timeouts += 1;
            report.totalTimeouts += 1;
        }
        bool rtl_non_masked = !cr.rtlMasked;
        if (rtl_non_masked) {
            cat.rtlNonMasked += 1;
            report.totalNonMasked += 1;
        }
        if (cr.rtlMasked == cr.predMasked ||
            (cr.category == FFCategory::GlobalControl && rtl_non_masked))
            cat.maskAgree += 1;
        if (!cr.rtlMasked && !cr.predMasked) {
            cat.bothNonMasked += 1;
            if (cr.setMatch)
                cat.setMatch += 1;
            if (cr.valueMatch)
                cat.valueMatch += 1;
            if (cr.orderMatch)
                cat.orderMatch += 1;
        }
    }
    return report;
}

} // namespace fidelity
