/**
 * @file
 * Application correctness metrics (Table IV of the paper).
 *
 * Image classification uses Top-1 label match against the fault-free
 * execution.  The Transformer uses a BLEU-style score of the faulty
 * decoded sequence against the fault-free sequence, accepted within a
 * 10% or 20% band.  Yolo uses a detection F-score against the
 * fault-free detections, accepted within the same bands.  Any NaN in
 * the final output is an application error.
 */

#ifndef FIDELITY_WORKLOADS_METRICS_HH
#define FIDELITY_WORKLOADS_METRICS_HH

#include <vector>

#include "core/injector.hh"
#include "tensor/tensor.hh"

namespace fidelity
{

/** Top-1 classification metric. */
CorrectnessFn top1Metric();

/**
 * BLEU-band metric for sequence outputs: decode argmax tokens per
 * position and require BLEU(golden, faulty) >= 1 - tolerance.
 */
CorrectnessFn bleuMetric(double tolerance);

/**
 * Detection-band metric: decode grid detections and require the
 * F-score of the faulty detections against the fault-free ones to stay
 * >= 1 - tolerance.
 */
CorrectnessFn detectionMetric(double tolerance);

/** Argmax token per sequence position (softmax output over C). */
std::vector<int> decodeTokens(const Tensor &out);

/**
 * BLEU-style score in [0, 1]: geometric mean of modified n-gram
 * precisions (n = 1..4) with brevity penalty.
 */
double bleuScore(const std::vector<int> &reference,
                 const std::vector<int> &hypothesis);

/** One decoded grid detection. */
struct Detection
{
    int cellH = 0;
    int cellW = 0;
    int cls = 0;
    float x = 0, y = 0, w = 0, h = 0;
};

/**
 * Decode a (1, H, W, 5 + classes) detection head: a cell detects when
 * sigmoid(channel 0) exceeds the threshold; channels 1-4 are the box,
 * the rest class logits.
 */
std::vector<Detection> decodeDetections(const Tensor &out,
                                        float obj_threshold = 0.5f);

/**
 * F-score of hypothesis detections against reference detections; a
 * match requires the same cell and class with box parameters within
 * `box_tol` in every coordinate.
 */
double detectionScore(const std::vector<Detection> &reference,
                      const std::vector<Detection> &hypothesis,
                      float box_tol = 0.1f);

/** True if any value is NaN or infinite. */
bool hasInvalidValues(const Tensor &t);

} // namespace fidelity

#endif // FIDELITY_WORKLOADS_METRICS_HH
