/**
 * @file
 * The study's DNN workloads (Table III / Table IV of the paper).
 *
 * Each builder produces a scaled-down but structurally faithful network
 * of its family: Inception (parallel-branch modules with channel
 * concatenation), ResNet (residual blocks), MobileNet (depthwise
 * separable blocks), Yolo (leaky-ReLU backbone with a grid detection
 * head), a Transformer encoder (attention + FFN with residuals), and an
 * unrolled LSTM.  Weights are He-initialised from a seed; correctness
 * metrics compare faulty output against the same network's fault-free
 * output, so trained weights are not required for the resilience
 * behaviour under study (see DESIGN.md).
 */

#ifndef FIDELITY_WORKLOADS_MODELS_HH
#define FIDELITY_WORKLOADS_MODELS_HH

#include <memory>
#include <string>
#include <vector>

#include "nn/layer.hh"
#include "nn/network.hh"
#include "tensor/tensor.hh"

namespace fidelity
{

/** Builders return the network; inputs come from defaultInputFor(). */
Network buildInception(std::uint64_t seed);
Network buildResNet(std::uint64_t seed);
Network buildMobileNet(std::uint64_t seed);
Network buildYolo(std::uint64_t seed);
Network buildTransformer(std::uint64_t seed);
Network buildLstm(std::uint64_t seed);

/** Build a study network by name (see studyNetworkNames()). */
Network buildNetwork(const std::string &name, std::uint64_t seed);

/** Names accepted by buildNetwork(). */
const std::vector<std::string> &studyNetworkNames();

/** The canonical input tensor for a study network. */
Tensor defaultInputFor(const std::string &name, std::uint64_t seed);

/**
 * One standalone layer of Table III used for framework validation,
 * together with its (owned) input tensors.
 */
struct ValidationWorkload
{
    std::string name;
    std::unique_ptr<MacLayer> layer;
    std::vector<Tensor> inputs;

    /** Borrowed input pointers in layer order. */
    std::vector<const Tensor *> ins() const;
};

/**
 * The six validation layers of Table III: conv3x3 layers in the style
 * of Inception / ResNet / Yolo residual blocks, the Transformer
 * feed-forward FC, the attention MatMul, and the LSTM gate FC.  All
 * run in FP16, as in the paper.
 */
std::vector<ValidationWorkload>
buildValidationWorkloads(std::uint64_t seed,
                         Precision precision = Precision::FP16);

} // namespace fidelity

#endif // FIDELITY_WORKLOADS_MODELS_HH
