#include "workloads/models.hh"

#include <cmath>

#include "nn/activation.hh"
#include "nn/attention.hh"
#include "nn/conv.hh"
#include "nn/elementwise.hh"
#include "nn/fc.hh"
#include "nn/init.hh"
#include "nn/lstm.hh"
#include "nn/matmul.hh"
#include "nn/pool.hh"
#include "nn/softmax.hh"
#include "sim/logging.hh"
#include "workloads/data.hh"

namespace fidelity
{

namespace
{

/** conv3x3 (+optional stride/groups) with He weights. */
NodeId
conv3x3(Network &net, NodeId in, int in_c, int out_c, Rng &rng,
        const std::string &name, int stride = 1, int groups = 1)
{
    ConvSpec spec;
    spec.inC = in_c;
    spec.outC = out_c;
    spec.kh = 3;
    spec.kw = 3;
    spec.pad = 1;
    spec.stride = stride;
    spec.groups = groups;
    std::size_t nw = static_cast<std::size_t>(9) * (in_c / groups) * out_c;
    return net.add(std::make_unique<Conv2D>(
                       name, spec, heWeights(rng, nw, 9 * in_c / groups),
                       smallBiases(rng, out_c)),
                   in);
}

/** conv1x1 with He weights. */
NodeId
conv1x1(Network &net, NodeId in, int in_c, int out_c, Rng &rng,
        const std::string &name)
{
    ConvSpec spec;
    spec.inC = in_c;
    spec.outC = out_c;
    spec.kh = 1;
    spec.kw = 1;
    std::size_t nw = static_cast<std::size_t>(in_c) * out_c;
    return net.add(std::make_unique<Conv2D>(name, spec,
                                            heWeights(rng, nw, in_c),
                                            smallBiases(rng, out_c)),
                   in);
}

NodeId
relu(Network &net, NodeId in, const std::string &name)
{
    return net.add(
        std::make_unique<Activation>(name, Activation::Func::ReLU), in);
}

NodeId
leaky(Network &net, NodeId in, const std::string &name)
{
    return net.add(std::make_unique<Activation>(
                       name, Activation::Func::LeakyReLU, 0.1f),
                   in);
}

/** Classifier tail: global average pool + FC + softmax. */
NodeId
classifierTail(Network &net, NodeId in, int in_c, int classes, Rng &rng,
               const std::string &prefix)
{
    NodeId gap =
        net.add(std::make_unique<GlobalAvgPool>(prefix + ".gap"), in);
    NodeId fc = net.add(
        std::make_unique<FC>(prefix + ".fc", in_c, classes,
                             heWeights(rng,
                                       static_cast<std::size_t>(in_c) *
                                           classes,
                                       in_c),
                             smallBiases(rng, classes)),
        gap);
    return net.add(std::make_unique<Softmax>(prefix + ".softmax"), fc);
}

} // namespace

Network
buildInception(std::uint64_t seed)
{
    Rng rng(seed);
    Network net("inception");
    NodeId x = 0;

    NodeId stem = relu(net, conv3x3(net, x, 8, 16, rng, "stem"),
                       "stem.relu");

    // Inception module: 1x1 branch | 3x3 branch, channel-concatenated.
    NodeId b1 = relu(net, conv1x1(net, stem, 16, 16, rng, "inc1.b1"),
                     "inc1.b1.relu");
    NodeId b2a = relu(net, conv1x1(net, stem, 16, 8, rng, "inc1.b2a"),
                      "inc1.b2a.relu");
    NodeId b2 = relu(net, conv3x3(net, b2a, 8, 16, rng, "inc1.b2"),
                     "inc1.b2.relu");
    NodeId cat = net.add(std::make_unique<ConcatC>("inc1.concat"),
                         std::vector<NodeId>{b1, b2});

    NodeId pool = net.add(
        std::make_unique<Pool>("pool1", Pool::Mode::Max, 2), cat);
    NodeId head = relu(net, conv3x3(net, pool, 32, 32, rng, "conv2"),
                       "conv2.relu");
    classifierTail(net, head, 32, 10, rng, "tail");
    return net;
}

Network
buildResNet(std::uint64_t seed)
{
    Rng rng(seed);
    Network net("resnet");
    NodeId x = 0;

    NodeId stem = relu(net, conv3x3(net, x, 8, 16, rng, "stem"),
                       "stem.relu");
    NodeId cur = stem;
    for (int b = 0; b < 2; ++b) {
        std::string p = "block" + std::to_string(b);
        NodeId c1 = relu(net, conv3x3(net, cur, 16, 16, rng, p + ".c1"),
                         p + ".c1.relu");
        NodeId c2 = conv3x3(net, c1, 16, 16, rng, p + ".c2");
        NodeId add = net.add(std::make_unique<Elementwise>(
                                 p + ".add", Elementwise::Op::Add),
                             std::vector<NodeId>{c2, cur});
        cur = relu(net, add, p + ".relu");
    }
    NodeId pool = net.add(
        std::make_unique<Pool>("pool", Pool::Mode::Max, 2), cur);
    NodeId head = relu(net, conv3x3(net, pool, 16, 32, rng, "head"),
                       "head.relu");
    classifierTail(net, head, 32, 10, rng, "tail");
    return net;
}

Network
buildMobileNet(std::uint64_t seed)
{
    Rng rng(seed);
    Network net("mobilenet");
    NodeId x = 0;

    NodeId stem = relu(net, conv3x3(net, x, 8, 16, rng, "stem"),
                       "stem.relu");
    NodeId cur = stem;
    int channels = 16;
    for (int b = 0; b < 2; ++b) {
        std::string p = "dws" + std::to_string(b);
        // Depthwise 3x3 followed by pointwise 1x1 expansion.
        NodeId dw = relu(net,
                         conv3x3(net, cur, channels, channels, rng,
                                 p + ".dw", /*stride=*/1,
                                 /*groups=*/channels),
                         p + ".dw.relu");
        int next_c = channels * 2;
        NodeId pw = relu(net, conv1x1(net, dw, channels, next_c, rng,
                                      p + ".pw"),
                         p + ".pw.relu");
        channels = next_c;
        cur = pw;
    }
    NodeId pool = net.add(
        std::make_unique<Pool>("pool", Pool::Mode::Avg, 2), cur);
    classifierTail(net, pool, channels, 10, rng, "tail");
    return net;
}

Network
buildYolo(std::uint64_t seed)
{
    Rng rng(seed);
    Network net("yolo");
    NodeId x = 0;

    NodeId c1 = leaky(net, conv3x3(net, x, 8, 16, rng, "c1"), "c1.act");
    NodeId c2 = leaky(net, conv3x3(net, c1, 16, 32, rng, "c2",
                                   /*stride=*/2),
                      "c2.act");
    // Residual block as in the Yolo backbones.
    NodeId r1 = leaky(net, conv1x1(net, c2, 32, 16, rng, "res.c1"),
                      "res.c1.act");
    NodeId r2 = conv3x3(net, r1, 16, 32, rng, "res.c2");
    NodeId add = net.add(std::make_unique<Elementwise>(
                             "res.add", Elementwise::Op::Add),
                         std::vector<NodeId>{r2, c2});
    NodeId body = leaky(net, add, "res.act");
    // Detection head: objectness + box + 3 classes per grid cell.
    conv1x1(net, body, 32, 8, rng, "head");
    return net;
}

Network
buildTransformer(std::uint64_t seed)
{
    Rng rng(seed);
    Network net("transformer");
    AttentionSpec spec;
    spec.seqLen = 12;
    spec.dModel = 32;
    spec.dFF = 64;

    NodeId cur = 0;
    for (int b = 0; b < 2; ++b)
        cur = addAttentionBlock(net, cur, spec, rng,
                                "enc" + std::to_string(b));
    // Per-position vocabulary projection + softmax.
    int vocab = 24;
    NodeId logits = net.add(
        std::make_unique<FC>("vocab", spec.dModel, vocab,
                             heWeights(rng,
                                       static_cast<std::size_t>(
                                           spec.dModel) *
                                           vocab,
                                       spec.dModel),
                             smallBiases(rng, vocab)),
        cur);
    net.add(std::make_unique<Softmax>("softmax"), logits);
    return net;
}

Network
buildLstm(std::uint64_t seed)
{
    Rng rng(seed);
    Network net("rnn");
    LstmSpec spec;
    spec.inputSize = 8;
    spec.hiddenSize = 16;
    spec.timeSteps = 4;

    NodeId h = addLstm(net, 0, spec, rng, "lstm");
    NodeId fc = net.add(
        std::make_unique<FC>("cls", spec.hiddenSize, 6,
                             heWeights(rng, spec.hiddenSize * 6,
                                       spec.hiddenSize),
                             smallBiases(rng, 6)),
        h);
    net.add(std::make_unique<Softmax>("softmax"), fc);
    return net;
}

const std::vector<std::string> &
studyNetworkNames()
{
    static const std::vector<std::string> names = {
        "inception", "resnet", "mobilenet", "yolo", "transformer", "rnn",
    };
    return names;
}

Network
buildNetwork(const std::string &name, std::uint64_t seed)
{
    if (name == "inception")
        return buildInception(seed);
    if (name == "resnet")
        return buildResNet(seed);
    if (name == "mobilenet")
        return buildMobileNet(seed);
    if (name == "yolo")
        return buildYolo(seed);
    if (name == "transformer")
        return buildTransformer(seed);
    if (name == "rnn")
        return buildLstm(seed);
    fatal("unknown network '", name, "'");
}

Tensor
defaultInputFor(const std::string &name, std::uint64_t seed)
{
    if (name == "transformer")
        return makeSequenceInput(seed, 12, 32);
    if (name == "rnn")
        return makeSensorInput(seed, 4, 8);
    // CNNs share a 16x16x8 image input.
    return makeImageInput(seed, 1, 16, 16, 8);
}

std::vector<const Tensor *>
ValidationWorkload::ins() const
{
    std::vector<const Tensor *> out;
    out.reserve(inputs.size());
    for (const Tensor &t : inputs)
        out.push_back(&t);
    return out;
}

std::vector<ValidationWorkload>
buildValidationWorkloads(std::uint64_t seed, Precision precision)
{
    Rng rng(seed);
    std::vector<ValidationWorkload> out;

    auto make_conv = [&](const std::string &name, int in_c, int out_c,
                         int hw) {
        ValidationWorkload w;
        w.name = name;
        ConvSpec spec;
        spec.inC = in_c;
        spec.outC = out_c;
        spec.kh = 3;
        spec.kw = 3;
        spec.pad = 1;
        std::size_t nw = static_cast<std::size_t>(9) * in_c * out_c;
        w.layer = std::make_unique<Conv2D>(
            name, spec, heWeights(rng, nw, 9 * in_c),
            smallBiases(rng, out_c));
        w.inputs.push_back(
            makeImageInput(seed ^ out.size(), 1, hw, hw, in_c));
        return w;
    };

    // Conv 3x3 layers of the Inception / ResNet / Yolo families.
    out.push_back(make_conv("inception-conv3x3", 16, 32, 8));
    out.push_back(make_conv("resnet-conv3x3", 16, 16, 8));

    // Transformer feed-forward FC over a 8-step sequence.
    {
        ValidationWorkload w;
        w.name = "transformer-fc";
        int d = 64, units = 64;
        w.layer = std::make_unique<FC>(
            "transformer-fc", d, units,
            heWeights(rng, static_cast<std::size_t>(d) * units, d),
            smallBiases(rng, units));
        w.inputs.push_back(makeSequenceInput(seed + 11, 8, d));
        out.push_back(std::move(w));
    }

    // Attention MatMul: Q * K^T over a 16-step sequence.
    {
        ValidationWorkload w;
        w.name = "attention-matmul";
        int steps = 16, d = 32;
        w.layer = std::make_unique<MatMulAB>(
            "attention-matmul", /*trans_b=*/true,
            1.0f / std::sqrt(static_cast<float>(d)));
        w.inputs.push_back(makeSequenceInput(seed + 21, steps, d));
        w.inputs.push_back(makeSequenceInput(seed + 22, steps, d));
        out.push_back(std::move(w));
    }

    // LSTM gate projection FC.
    {
        ValidationWorkload w;
        w.name = "lstm-fc";
        int in_c = 24, units = 64;
        w.layer = std::make_unique<FC>(
            "lstm-fc", in_c, units,
            heWeights(rng, static_cast<std::size_t>(in_c) * units, in_c),
            smallBiases(rng, units));
        w.inputs.push_back(makeSequenceInput(seed + 31, 1, in_c));
        out.push_back(std::move(w));
    }

    out.push_back(make_conv("yolo-conv3x3", 16, 32, 8));

    for (ValidationWorkload &w : out) {
        w.layer->setPrecision(Precision::FP32);
        // Calibrate integer quantisation ranges from the FP32 pass.
        auto ins = w.ins();
        Tensor golden = w.layer->forward(ins);
        w.layer->calibrate(ins, golden);
        w.layer->setPrecision(precision);
    }
    return out;
}

} // namespace fidelity
