/**
 * @file
 * Synthetic input generation for the study's workloads.
 *
 * Inputs are deterministic given a seed.  Images are smooth random
 * fields (sums of Gaussian blobs) rather than white noise so that
 * convolution activations have realistic spatial correlation; sequence
 * inputs are drawn per-position.  The correctness metrics compare
 * faulty output against the fault-free output of the same network on
 * the same input, so no labelled dataset is required (see DESIGN.md).
 */

#ifndef FIDELITY_WORKLOADS_DATA_HH
#define FIDELITY_WORKLOADS_DATA_HH

#include "sim/rng.hh"
#include "tensor/tensor.hh"

namespace fidelity
{

/** A smooth random image batch (N, H, W, C) with values ~[-2, 2]. */
Tensor makeImageInput(std::uint64_t seed, int n, int h, int w, int c);

/** A random embedded token sequence (1, steps, 1, dim). */
Tensor makeSequenceInput(std::uint64_t seed, int steps, int dim);

/** A sensor-style multivariate time series (1, steps, 1, channels). */
Tensor makeSensorInput(std::uint64_t seed, int steps, int channels);

} // namespace fidelity

#endif // FIDELITY_WORKLOADS_DATA_HH
