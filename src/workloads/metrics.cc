#include "workloads/metrics.hh"

#include <algorithm>
#include <cmath>
#include <map>

#include "sim/logging.hh"

namespace fidelity
{

bool
hasInvalidValues(const Tensor &t)
{
    for (std::size_t i = 0; i < t.size(); ++i)
        if (!std::isfinite(t[i]))
            return true;
    return false;
}

CorrectnessFn
top1Metric()
{
    return [](const Tensor &golden, const Tensor &faulty) {
        return top1Match(golden, faulty);
    };
}

std::vector<int>
decodeTokens(const Tensor &out)
{
    std::vector<int> tokens;
    tokens.reserve(static_cast<std::size_t>(out.n()) * out.h() * out.w());
    for (int n = 0; n < out.n(); ++n) {
        for (int h = 0; h < out.h(); ++h) {
            for (int w = 0; w < out.w(); ++w) {
                int best = 0;
                float best_v = out.at(n, h, w, 0);
                for (int c = 1; c < out.c(); ++c) {
                    float v = out.at(n, h, w, c);
                    if (v > best_v) {
                        best_v = v;
                        best = c;
                    }
                }
                tokens.push_back(best);
            }
        }
    }
    return tokens;
}

double
bleuScore(const std::vector<int> &reference,
          const std::vector<int> &hypothesis)
{
    if (hypothesis.empty())
        return reference.empty() ? 1.0 : 0.0;

    const int max_n = 4;
    double log_sum = 0.0;
    int used_orders = 0;
    for (int n = 1; n <= max_n; ++n) {
        if (static_cast<int>(reference.size()) < n ||
            static_cast<int>(hypothesis.size()) < n)
            break;
        used_orders += 1;
        std::map<std::vector<int>, int> ref_counts;
        for (std::size_t i = 0; i + n <= reference.size(); ++i)
            ref_counts[{reference.begin() + i,
                        reference.begin() + i + n}] += 1;
        int matched = 0;
        int total = 0;
        std::map<std::vector<int>, int> used;
        for (std::size_t i = 0; i + n <= hypothesis.size(); ++i) {
            std::vector<int> gram(hypothesis.begin() + i,
                                  hypothesis.begin() + i + n);
            total += 1;
            auto it = ref_counts.find(gram);
            if (it != ref_counts.end() && used[gram] < it->second) {
                used[gram] += 1;
                matched += 1;
            }
        }
        if (matched == 0)
            return 0.0;
        log_sum += std::log(static_cast<double>(matched) / total);
    }
    if (used_orders == 0)
        return reference == hypothesis ? 1.0 : 0.0;
    double precision = std::exp(log_sum / used_orders);
    double bp = 1.0;
    if (hypothesis.size() < reference.size())
        bp = std::exp(1.0 - static_cast<double>(reference.size()) /
                                hypothesis.size());
    return bp * precision;
}

CorrectnessFn
bleuMetric(double tolerance)
{
    return [tolerance](const Tensor &golden, const Tensor &faulty) {
        if (hasInvalidValues(faulty))
            return false;
        std::vector<int> ref = decodeTokens(golden);
        std::vector<int> hyp = decodeTokens(faulty);
        // The fault-free score is 1; accept within the band.
        return bleuScore(ref, hyp) >= 1.0 - tolerance;
    };
}

std::vector<Detection>
decodeDetections(const Tensor &out, float obj_threshold)
{
    panic_if(out.c() < 6, "detection head needs >= 6 channels");
    std::vector<Detection> dets;
    for (int h = 0; h < out.h(); ++h) {
        for (int w = 0; w < out.w(); ++w) {
            float obj = out.at(0, h, w, 0);
            float conf = 1.0f / (1.0f + std::exp(-obj));
            if (!(conf > obj_threshold))
                continue;
            Detection d;
            d.cellH = h;
            d.cellW = w;
            d.x = out.at(0, h, w, 1);
            d.y = out.at(0, h, w, 2);
            d.w = out.at(0, h, w, 3);
            d.h = out.at(0, h, w, 4);
            int best = 5;
            for (int c = 6; c < out.c(); ++c)
                if (out.at(0, h, w, c) > out.at(0, h, w, best))
                    best = c;
            d.cls = best - 5;
            dets.push_back(d);
        }
    }
    return dets;
}

double
detectionScore(const std::vector<Detection> &reference,
               const std::vector<Detection> &hypothesis, float box_tol)
{
    if (reference.empty() && hypothesis.empty())
        return 1.0;
    if (reference.empty() || hypothesis.empty())
        return 0.0;

    std::vector<bool> used(reference.size(), false);
    int matched = 0;
    for (const Detection &h : hypothesis) {
        for (std::size_t i = 0; i < reference.size(); ++i) {
            const Detection &r = reference[i];
            if (used[i] || r.cellH != h.cellH || r.cellW != h.cellW ||
                r.cls != h.cls)
                continue;
            if (std::fabs(r.x - h.x) <= box_tol &&
                std::fabs(r.y - h.y) <= box_tol &&
                std::fabs(r.w - h.w) <= box_tol &&
                std::fabs(r.h - h.h) <= box_tol) {
                used[i] = true;
                matched += 1;
                break;
            }
        }
    }
    double precision = static_cast<double>(matched) / hypothesis.size();
    double recall = static_cast<double>(matched) / reference.size();
    if (precision + recall == 0.0)
        return 0.0;
    return 2.0 * precision * recall / (precision + recall);
}

CorrectnessFn
detectionMetric(double tolerance)
{
    return [tolerance](const Tensor &golden, const Tensor &faulty) {
        if (hasInvalidValues(faulty))
            return false;
        auto ref = decodeDetections(golden);
        auto hyp = decodeDetections(faulty);
        return detectionScore(ref, hyp) >= 1.0 - tolerance;
    };
}

} // namespace fidelity
