#include "workloads/data.hh"

#include <cmath>

namespace fidelity
{

Tensor
makeImageInput(std::uint64_t seed, int n, int h, int w, int c)
{
    Rng rng(seed);
    Tensor out(n, h, w, c);
    const int blobs = 6;
    for (int b = 0; b < n; ++b) {
        for (int ch = 0; ch < c; ++ch) {
            // Sum of Gaussian blobs gives smooth spatial structure.
            for (int k = 0; k < blobs; ++k) {
                double cx = rng.uniform(0.0, w);
                double cy = rng.uniform(0.0, h);
                double amp = rng.uniform(-1.5, 1.5);
                double sigma = rng.uniform(1.0, 3.0);
                for (int y = 0; y < h; ++y) {
                    for (int x = 0; x < w; ++x) {
                        double d2 = (x - cx) * (x - cx) +
                                    (y - cy) * (y - cy);
                        out.at(b, y, x, ch) += static_cast<float>(
                            amp * std::exp(-d2 / (2.0 * sigma * sigma)));
                    }
                }
            }
        }
    }
    return out;
}

Tensor
makeSequenceInput(std::uint64_t seed, int steps, int dim)
{
    Rng rng(seed);
    Tensor out(1, steps, 1, dim);
    for (auto &v : out.data())
        v = static_cast<float>(rng.normal(0.0, 1.0));
    return out;
}

Tensor
makeSensorInput(std::uint64_t seed, int steps, int channels)
{
    Rng rng(seed);
    Tensor out(1, steps, 1, channels);
    // A slow drift plus noise per channel, like IMU traces.
    for (int c = 0; c < channels; ++c) {
        double phase = rng.uniform(0.0, 6.28);
        double freq = rng.uniform(0.2, 1.0);
        double amp = rng.uniform(0.5, 1.5);
        for (int t = 0; t < steps; ++t) {
            out.at(0, t, 0, c) = static_cast<float>(
                amp * std::sin(phase + freq * t) +
                rng.normal(0.0, 0.2));
        }
    }
    return out;
}

} // namespace fidelity
