/**
 * @file
 * Cycle-level model of an NVDLA-like convolution/matmul engine.
 *
 * The engine executes the dataflow the paper describes for NVDLA
 * (Fig. 2a): k^2 parallel MAC units receive the same broadcast input
 * each cycle while holding per-MAC weights for t cycles, computing the
 * output neurons at one position across k^2 consecutive output
 * channels; positions advance in row-major order in blocks of t.
 *
 * Every architecturally relevant flip-flop (fetch registers, operand
 * registers, partial sums, output/bias registers, valid bits, mux
 * selects, configuration registers and sequencing counters) is explicit
 * named state, and all sequencing decisions re-read the configuration/
 * counter registers every cycle, so a bit flip injected into any of
 * them propagates exactly as it would through RTL: wrong addresses,
 * wrong loop trip counts (down to hangs caught by the time-out), or
 * corrupted operands.
 *
 * Arithmetic follows the shared convention of the nn layers (operands
 * stored in the precision's representation, FP32 or integer
 * accumulation in the canonical reduction order, one rounding at
 * writeback), so a fault-free engine run reproduces the nn layer's
 * output bit-for-bit — the property FIdelity's validation relies on.
 */

#ifndef FIDELITY_ACCEL_NVDLA_CORE_HH
#define FIDELITY_ACCEL_NVDLA_CORE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "accel/ff.hh"
#include "accel/nvdla_config.hh"
#include "nn/layer.hh"
#include "tensor/quant.hh"
#include "tensor/tensor.hh"

namespace fidelity
{

/** One layer's worth of work for the engine. */
struct EngineLayer
{
    enum class Kind { Conv, MatMul } kind = Kind::Conv;

    Precision precision = Precision::FP16;

    // Convolution geometry (Kind::Conv). Groups are not supported; the
    // validation workloads are standard convolutions.
    int inC = 1, inH = 1, inW = 1;
    int outC = 1, outH = 1, outW = 1;
    int kh = 1, kw = 1, stride = 1, pad = 0, dilation = 1;
    int batch = 1;

    // MatMul geometry (Kind::MatMul): out[r][c] = sum_k A[r][k]*B[k][c].
    int rows = 1, red = 1, cols = 1;

    /** Conv: [kh][kw][ci][oc] flat.  MatMul: [k][col] flat. */
    std::vector<float> weights;

    /** Per-output-channel (or per-column) bias; empty to disable. */
    std::vector<float> bias;

    /** Constant output scaling (attention 1/sqrt(d)); 1.0 otherwise. */
    float outScale = 1.0f;

    /**
     * Timing-model override of the per-neuron reduction length; used to
     * describe grouped/depthwise convolutions (which the cycle-level
     * engine itself does not execute) to the performance model.  0
     * keeps the geometric default.
     */
    int redOverride = 0;

    /** Quantisation parameters for the integer modes. */
    QuantParams inQuant, wQuant, outQuant;

    /** Total output positions (batch * outH * outW, or rows). */
    int positions() const;

    /** Reduction length per output neuron. */
    int reduction() const;

    /** Output channel count (outC or cols). */
    int channels() const;

    /** Output tensor shape. */
    Tensor makeOutput() const;
};

/** Execution phase of the engine's sequencer. */
enum class EnginePhase : std::uint8_t
{
    FetchW,
    FetchI,
    BlockStart,
    LoadStage,
    LoadHold,
    Mac,
    Drain,
    Done
};

/**
 * Microarchitectural context of one cycle (the values the sequencing
 * counters held when the cycle executed).  A golden-run trace of these
 * is the oracle the FI driver uses to map a fault site onto the
 * corresponding software fault model.
 */
struct CycleInfo
{
    EnginePhase phase = EnginePhase::FetchW;
    std::int32_t fetch = 0;
    std::int32_t cg = 0;
    std::int32_t blk = 0;
    std::int32_t step = 0;
    std::int32_t pos = 0;
    std::int32_t drain = 0;
};

/** Result of one engine run. */
struct EngineResult
{
    Tensor output;
    std::uint64_t cycles = 0;
    bool timeout = false; //!< exceeded the cycle budget
    bool anomaly = false; //!< sequencing became unrecoverable

    /** Writeback cycle of each output element (flat index order). */
    std::vector<std::uint64_t> writebackCycle;

    /** Per-cycle schedule trace (entry i is cycle i+1); optional. */
    std::vector<CycleInfo> trace;
};

/** The cycle-level engine. */
class NvdlaEngine
{
  public:
    NvdlaEngine(const NvdlaConfig &cfg, const EngineLayer &layer);

    /**
     * Run the layer.
     * @param input Input tensor: conv expects (batch, inH, inW, inC);
     *              matmul expects rows*red values in row-major order.
     * @param fault Optional fault site to inject.
     * @param max_cycles Cycle budget; 0 derives it from a golden run is
     *                   not possible here, so callers pass an explicit
     *                   budget (the FI driver uses timeoutFactor times
     *                   the golden cycle count).  0 means unlimited.
     * @param record_trace Record a per-cycle CycleInfo schedule trace.
     */
    EngineResult run(const Tensor &input, const FaultSite *fault,
                     std::uint64_t max_cycles = 0,
                     bool record_trace = false,
                     const std::vector<MemFault> *mem_faults = nullptr);

    /** Cycle count of a fault-free run (for budgets and sampling). */
    std::uint64_t goldenCycles(const Tensor &input);

    /** All injectable flip-flop instances (bit excluded). */
    std::vector<FFRef> ffInventory() const;

    /** Number of flippable bits in an FF of the given class. */
    int ffBits(FFClass cls) const;

    const NvdlaConfig &config() const { return cfg_; }
    const EngineLayer &layerSpec() const { return layer_; }

  private:
    /** All mutable machine state of one run (flip-flops + memories). */
    struct RunState;

    /** Flip the referenced FF's stored value (fault application). */
    void flipRef(RunState &rs, const FFRef &ff) const;

    /** Quantise/round a real operand into datapath storage. */
    double storeOperand(float x, bool is_weight) const;

    /** Mask-flip a stored operand word per the active precision. */
    double flipOperand(double stored, bool is_weight,
                       std::uint32_t mask) const;

    /** Writeback: raw accumulator + gated bias -> output value. */
    float writebackVal(double acc, float gated_bias) const;

    /** Mask-flip a stored output word per the active precision. */
    float flipOutput(float stored, std::uint32_t mask) const;

    bool integerMode() const;

    /** Reduction-step -> CBUF weight address (reads config regs). */
    std::int64_t weightAddr(const RunState &rs, std::int64_t chan,
                            std::int64_t red_step, bool &bad) const;

    /**
     * Reduction-step -> CBUF input address; -1 denotes a padded
     * (zero) operand.
     */
    std::int64_t inputAddr(const RunState &rs, std::int64_t pos,
                           std::int64_t red_step, bool &bad) const;

    /** Output-buffer flat address of (position, channel). */
    std::int64_t outAddr(const RunState &rs, std::int64_t pos,
                         std::int64_t chan, bool &bad) const;

    NvdlaConfig cfg_;
    EngineLayer layer_;
    std::size_t cbufWords_ = 0; //!< modelled CBUF size for this layer
};

} // namespace fidelity

#endif // FIDELITY_ACCEL_NVDLA_CORE_HH
