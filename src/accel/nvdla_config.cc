#include "accel/nvdla_config.hh"

#include <sstream>

namespace fidelity
{

std::string
NvdlaConfig::str() const
{
    std::ostringstream os;
    os << "NVDLA-like engine: " << macs() << " MACs (k=" << k
       << "), weight hold t=" << t << ", CBUF " << cbufWords
       << " words/region, fetch " << fetchWordsPerCycle << " words/cycle";
    return os.str();
}

} // namespace fidelity
