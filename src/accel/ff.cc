#include "accel/ff.hh"

#include <sstream>

#include "sim/logging.hh"

namespace fidelity
{

const char *
ffClassName(FFClass cls)
{
    switch (cls) {
      case FFClass::FetchInput:
        return "FetchInput";
      case FFClass::FetchWeight:
        return "FetchWeight";
      case FFClass::OperandInput:
        return "OperandInput";
      case FFClass::WeightStage:
        return "WeightStage";
      case FFClass::WeightHold:
        return "WeightHold";
      case FFClass::Psum:
        return "Psum";
      case FFClass::OutputReg:
        return "OutputReg";
      case FFClass::BiasReg:
        return "BiasReg";
      case FFClass::LocalValid:
        return "LocalValid";
      case FFClass::LocalMuxSel:
        return "LocalMuxSel";
      case FFClass::GlobalConfig:
        return "GlobalConfig";
      case FFClass::GlobalCounter:
        return "GlobalCounter";
    }
    panic("unknown FFClass");
}

const char *
configRegName(ConfigReg r)
{
    switch (r) {
      case ConfigReg::OutC:
        return "OutC";
      case ConfigReg::Positions:
        return "Positions";
      case ConfigReg::Red:
        return "Red";
      case ConfigReg::OutH:
        return "OutH";
      case ConfigReg::OutW:
        return "OutW";
      case ConfigReg::InC:
        return "InC";
      case ConfigReg::InH:
        return "InH";
      case ConfigReg::InW:
        return "InW";
      case ConfigReg::KH:
        return "KH";
      case ConfigReg::KW:
        return "KW";
      case ConfigReg::Stride:
        return "Stride";
      case ConfigReg::Pad:
        return "Pad";
      case ConfigReg::Dilation:
        return "Dilation";
      case ConfigReg::Batch:
        return "Batch";
      case ConfigReg::NumRegs:
        break;
    }
    panic("unknown ConfigReg");
}

const char *
counterRegName(CounterReg r)
{
    switch (r) {
      case CounterReg::ChanGroup:
        return "ChanGroup";
      case CounterReg::Block:
        return "Block";
      case CounterReg::RedStep:
        return "RedStep";
      case CounterReg::Pos:
        return "Pos";
      case CounterReg::Fetch:
        return "Fetch";
      case CounterReg::Drain:
        return "Drain";
      case CounterReg::NumRegs:
        break;
    }
    panic("unknown CounterReg");
}

std::string
FFRef::str() const
{
    std::ostringstream os;
    os << ffClassName(cls) << "[";
    if (cls == FFClass::GlobalConfig)
        os << configRegName(static_cast<ConfigReg>(unit));
    else if (cls == FFClass::GlobalCounter)
        os << counterRegName(static_cast<CounterReg>(unit));
    else
        os << unit;
    os << "].bit" << bit;
    return os.str();
}

std::string
FaultSite::str() const
{
    std::ostringstream os;
    os << ff.str() << "@cycle" << cycle;
    return os.str();
}

} // namespace fidelity
