/**
 * @file
 * Analytical performance model of the NVDLA-like engine.
 *
 * Plays the role of NVDLA's public performance tool in the paper's
 * activeness analysis: from the scheduling/reuse algorithm and the
 * hardware configuration alone, break a layer's execution into fetch /
 * MAC / drain cycles.  The totals match the cycle-level engine exactly
 * (unit-tested), and the per-phase fractions feed Class-3 ("temporally
 * not used") inactivity probabilities in Eq. 1.
 */

#ifndef FIDELITY_ACCEL_PERF_MODEL_HH
#define FIDELITY_ACCEL_PERF_MODEL_HH

#include <cstdint>

#include "accel/nvdla_config.hh"
#include "accel/nvdla_core.hh"

namespace fidelity
{

/** Cycle breakdown of one layer on the engine. */
struct LayerTiming
{
    std::uint64_t fetchCycles = 0; //!< FetchW + FetchI phases
    std::uint64_t macCycles = 0;   //!< BlockStart/Load/Mac phases
    std::uint64_t drainCycles = 0; //!< Drain phase
    std::uint64_t totalCycles = 0; //!< whole layer (matches the engine)

    /** Fraction of time the MAC-array flip-flops are active. */
    double macActiveFrac() const;

    /** Fraction of time the fetch-path flip-flops are active. */
    double fetchActiveFrac() const;

    /** Fraction of time the output-path flip-flops are active. */
    double drainActiveFrac() const;
};

/** Predict the engine's exact cycle breakdown for a layer. */
LayerTiming estimateTiming(const NvdlaConfig &cfg,
                           const EngineLayer &layer);

} // namespace fidelity

#endif // FIDELITY_ACCEL_PERF_MODEL_HH
