#include "accel/nvdla_fi.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace fidelity
{

namespace
{

/** Semantic equality: bit-different NaNs and +/-0 are "same output". */
bool
sameValue(float a, float b)
{
    if (std::isnan(a) && std::isnan(b))
        return true;
    return a == b;
}

} // namespace

NvdlaFi::NvdlaFi(const NvdlaConfig &cfg, const EngineLayer &layer,
                 Tensor input)
    : engine_(cfg, layer), input_(std::move(input))
{
    golden_ = engine_.run(input_, nullptr, 0, /*record_trace=*/true);
    panic_if(golden_.timeout || golden_.anomaly,
             "golden engine run failed");
    inventory_ = engine_.ffInventory();
    bitWeights_.reserve(inventory_.size());
    for (const FFRef &ff : inventory_)
        bitWeights_.push_back(static_cast<double>(engine_.ffBits(ff.cls)));

    cyclesByPhase_.resize(static_cast<int>(EnginePhase::Done) + 1);
    for (std::size_t i = 0; i < golden_.trace.size(); ++i) {
        cyclesByPhase_[static_cast<int>(golden_.trace[i].phase)]
            .push_back(static_cast<std::uint32_t>(i + 1));
    }
}

RtlOutcome
NvdlaFi::inject(const FaultSite &site)
{
    std::uint64_t budget =
        golden_.cycles * engine_.config().timeoutFactor + 64;
    EngineResult res = engine_.run(input_, &site, budget);

    RtlOutcome out;
    out.timeout = res.timeout;
    out.anomaly = res.anomaly;
    out.cycles = res.cycles;
    if (!res.timeout && !res.anomaly) {
        for (std::size_t i = 0; i < res.output.size(); ++i) {
            if (!sameValue(res.output[i], golden_.output[i])) {
                out.faulty.push_back({i, golden_.output[i], res.output[i],
                                      res.writebackCycle[i]});
            }
        }
    }
    return out;
}

RtlOutcome
NvdlaFi::injectMem(const std::vector<MemFault> &faults)
{
    std::uint64_t budget =
        golden_.cycles * engine_.config().timeoutFactor + 64;
    EngineResult res =
        engine_.run(input_, nullptr, budget, false, &faults);

    RtlOutcome out;
    out.timeout = res.timeout;
    out.anomaly = res.anomaly;
    out.cycles = res.cycles;
    if (!res.timeout && !res.anomaly) {
        for (std::size_t i = 0; i < res.output.size(); ++i) {
            if (!sameValue(res.output[i], golden_.output[i])) {
                out.faulty.push_back({i, golden_.output[i],
                                      res.output[i],
                                      res.writebackCycle[i]});
            }
        }
    }
    return out;
}

std::uint64_t
NvdlaFi::computeStartCycle() const
{
    const auto &bs =
        cyclesByPhase_[static_cast<int>(EnginePhase::BlockStart)];
    panic_if(bs.empty(), "engine never reached the compute phase");
    return bs.front();
}

FaultSite
NvdlaFi::sampleSite(Rng &rng) const
{
    FaultSite site;
    std::size_t idx = rng.weighted(bitWeights_);
    site.ff = inventory_[idx];
    site.ff.bit =
        static_cast<int>(rng.below(engine_.ffBits(site.ff.cls)));
    site.cycle = 1 + rng.below(static_cast<std::uint32_t>(
                     std::min<std::uint64_t>(golden_.cycles, 0xffffffffu)));
    return site;
}

FaultSite
NvdlaFi::sampleSiteDirected(FFClass cls, Rng &rng) const
{
    // Phases where the class is live.
    std::vector<EnginePhase> phases;
    switch (cls) {
      case FFClass::FetchInput:
        phases = {EnginePhase::FetchI};
        break;
      case FFClass::FetchWeight:
        phases = {EnginePhase::FetchW};
        break;
      case FFClass::OperandInput:
      case FFClass::WeightHold:
        phases = {EnginePhase::Mac};
        break;
      case FFClass::WeightStage:
        phases = {EnginePhase::LoadHold};
        break;
      case FFClass::Psum:
        phases = {EnginePhase::LoadStage, EnginePhase::LoadHold,
                  EnginePhase::Mac, EnginePhase::Drain};
        break;
      case FFClass::OutputReg:
      case FFClass::BiasReg:
      case FFClass::LocalValid:
      case FFClass::LocalMuxSel:
        phases = {EnginePhase::Drain};
        break;
      case FFClass::GlobalConfig:
      case FFClass::GlobalCounter:
        break; // any cycle
    }

    std::vector<std::uint32_t> pool;
    if (phases.empty()) {
        FaultSite any = sampleSite(rng);
        // keep the random cycle, just force the class below
        pool.push_back(static_cast<std::uint32_t>(any.cycle));
    } else {
        std::size_t total = 0;
        for (EnginePhase ph : phases)
            total += cyclesByPhase_[static_cast<int>(ph)].size();
        panic_if(total == 0, "no live cycles for ", ffClassName(cls));
        std::size_t pick =
            rng.below(static_cast<std::uint32_t>(total));
        for (EnginePhase ph : phases) {
            const auto &v = cyclesByPhase_[static_cast<int>(ph)];
            if (pick < v.size()) {
                pool.push_back(v[pick]);
                break;
            }
            pick -= v.size();
        }
    }

    FaultSite site;
    site.cycle = pool.front();
    site.ff.cls = cls;
    site.ff.bit = static_cast<int>(rng.below(engine_.ffBits(cls)));

    // Pick a unit; for per-MAC drain-stage bits choose the MAC the
    // drain pipeline is serving so the site is actually live.
    const CycleInfo &ci = golden_.trace[site.cycle - 1];
    int macs = engine_.config().macs();
    switch (cls) {
      case FFClass::WeightStage:
      case FFClass::WeightHold:
        site.ff.unit = static_cast<int>(rng.below(macs));
        break;
      case FFClass::Psum:
        site.ff.unit = static_cast<int>(
            rng.below(macs * engine_.config().t));
        break;
      case FFClass::LocalValid:
        site.ff.unit = ci.drain >= 2
            ? static_cast<int>((ci.drain - 2) % macs)
            : static_cast<int>(rng.below(macs));
        break;
      case FFClass::GlobalConfig:
        site.ff.unit = static_cast<int>(
            rng.below(static_cast<int>(ConfigReg::NumRegs)));
        break;
      case FFClass::GlobalCounter:
        site.ff.unit = static_cast<int>(
            rng.below(static_cast<int>(CounterReg::NumRegs)));
        break;
      default:
        site.ff.unit = 0;
        break;
    }
    return site;
}

SiteContext
NvdlaFi::context(const FaultSite &site) const
{
    SiteContext ctx;
    panic_if(site.cycle < 1 || site.cycle > golden_.trace.size(),
             "fault cycle outside the golden trace");
    const CycleInfo &ci = golden_.trace[site.cycle - 1];
    ctx.phase = ci.phase;
    ctx.fetch = ci.fetch;
    ctx.cg = ci.cg;
    ctx.blk = ci.blk;
    ctx.step = ci.step;
    ctx.pos = ci.pos;
    ctx.drain = ci.drain;
    const EngineLayer &layer = engine_.layerSpec();
    ctx.blkStart = ctx.blk * engine_.config().t;
    ctx.blkLen = std::clamp<std::int64_t>(
        layer.positions() - ctx.blkStart, 0, engine_.config().t);
    return ctx;
}

EngineLayer
engineLayerFromConv(const Conv2D &conv, const Tensor &input)
{
    const ConvSpec &spec = conv.spec();
    fatal_if(spec.groups != 1,
             "the engine models standard (groups == 1) convolutions");
    EngineLayer el;
    el.kind = EngineLayer::Kind::Conv;
    el.precision = conv.precision();
    el.inC = spec.inC;
    el.inH = input.h();
    el.inW = input.w();
    el.outC = spec.outC;
    el.outH = conv.outDim(input.h(), spec.kh);
    el.outW = conv.outDim(input.w(), spec.kw);
    el.kh = spec.kh;
    el.kw = spec.kw;
    el.stride = spec.stride;
    el.pad = spec.pad;
    el.dilation = spec.dilation;
    el.batch = input.n();
    el.weights = conv.weightData();
    el.bias = conv.biasData();
    el.inQuant = conv.inputQuant();
    el.wQuant = conv.weightQuant();
    el.outQuant = conv.outputQuant();
    return el;
}

EngineLayer
engineLayerFromFC(const FC &fc, const Tensor &input)
{
    EngineLayer el;
    el.kind = EngineLayer::Kind::MatMul;
    el.precision = fc.precision();
    el.rows = input.n() * input.h() * input.w();
    el.red = fc.inC();
    el.cols = fc.units();
    el.weights = fc.weightData();
    el.bias = fc.biasData();
    el.inQuant = fc.inputQuant();
    el.wQuant = fc.weightQuant();
    el.outQuant = fc.outputQuant();
    return el;
}

EngineLayer
engineLayerFromMatMul(const MatMulAB &mm, const Tensor &a, const Tensor &b)
{
    EngineLayer el;
    el.kind = EngineLayer::Kind::MatMul;
    el.precision = mm.precision();
    el.rows = a.n() * a.h();
    el.red = a.c();
    el.cols = mm.transB() ? b.h() : b.c();
    el.outScale = mm.outScale();
    el.weights.resize(static_cast<std::size_t>(el.red) * el.cols);
    for (int k = 0; k < el.red; ++k) {
        for (int j = 0; j < el.cols; ++j) {
            float v = mm.transB() ? b.at(0, j, 0, k) : b.at(0, k, 0, j);
            el.weights[static_cast<std::size_t>(k) * el.cols + j] = v;
        }
    }
    el.inQuant = mm.inputQuant();
    el.wQuant = mm.weightQuant();
    el.outQuant = mm.outputQuant();
    return el;
}

} // namespace fidelity
