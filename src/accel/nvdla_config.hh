/**
 * @file
 * Static configuration of the NVDLA-like engine.
 *
 * Matches the case-study configuration of the paper: k = 4, so k^2 = 16
 * parallel MAC units, and t = 16 weight-hold cycles (which is also the
 * position-block length).  All parameters are plain inputs so
 * sensitivity analysis can vary them.
 */

#ifndef FIDELITY_ACCEL_NVDLA_CONFIG_HH
#define FIDELITY_ACCEL_NVDLA_CONFIG_HH

#include <cstdint>
#include <string>

namespace fidelity
{

/** Hardware configuration parameters of the NVDLA-like engine. */
struct NvdlaConfig
{
    int k = 4;  //!< MAC array is k^2 units
    int t = 16; //!< weight hold cycles == position-block length

    /** Number of parallel MAC units. */
    int macs() const { return k * k; }

    /** CBUF capacity in data words, per operand region. */
    std::size_t cbufWords = 512 * 1024;

    /** Operand words fetched into CBUF per cycle (fetch bandwidth). */
    int fetchWordsPerCycle = 16;

    /**
     * Fault runs abort with a timeout once they exceed this multiple of
     * the golden run's cycle count (mirrors the RTL testbench's
     * system time-out).
     */
    std::uint64_t timeoutFactor = 8;

    /** Human-readable summary for reports. */
    std::string str() const;
};

} // namespace fidelity

#endif // FIDELITY_ACCEL_NVDLA_CONFIG_HH
