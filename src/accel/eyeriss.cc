#include "accel/eyeriss.hh"

#include "sim/logging.hh"

namespace fidelity
{

EyerissModel::EyerissModel(const EyerissConfig &cfg, int out_h, int out_w,
                           int out_c)
    : cfg_(cfg), outH_(out_h), outW_(out_w), outC_(out_c)
{
    fatal_if(cfg.k <= 0 || cfg.t <= 0,
             "Eyeriss geometry must be positive");
    fatal_if(out_h <= 0 || out_w <= 0 || out_c <= 0,
             "output dimensions must be positive");
}

bool
EyerissModel::inRange(const NeuronIndex &n) const
{
    return n.h >= 0 && n.h < outH_ && n.w >= 0 && n.w < outW_ &&
           n.c >= 0 && n.c < outC_;
}

std::vector<NeuronIndex>
EyerissModel::weightFaultNeurons(int row0, int col, int chan) const
{
    // The corrupted weight value marches across the k columns; column i
    // is computing output row row0 + i when the value arrives.
    std::vector<NeuronIndex> out;
    for (int i = 0; i < cfg_.k; ++i) {
        NeuronIndex n{0, row0 + i, col, chan};
        if (inRange(n))
            out.push_back(n);
    }
    return out;
}

std::vector<NeuronIndex>
EyerissModel::inputFaultNeurons(int row0, int col, int chan0) const
{
    // Diagonal reuse spreads the value over k consecutive rows (one per
    // column step), and each MAC reuses it for t consecutive output
    // channels.
    std::vector<NeuronIndex> out;
    for (int c = 0; c < cfg_.t; ++c) {
        for (int i = 0; i < cfg_.k; ++i) {
            NeuronIndex n{0, row0 + i, col, chan0 + c};
            if (inRange(n))
                out.push_back(n);
        }
    }
    return out;
}

std::vector<NeuronIndex>
EyerissModel::biasFaultNeurons(int row, int col, int chan) const
{
    NeuronIndex n{0, row, col, chan};
    if (inRange(n))
        return {n};
    return {};
}

} // namespace fidelity
