#include "accel/nvdla_core.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"
#include "tensor/bitops.hh"
#include "tensor/float16.hh"

namespace fidelity
{

namespace
{

using i64 = std::int64_t;

/** Saturating clamp for address arithmetic on corrupted registers. */
constexpr i64 satLimit = i64{1} << 40;

i64
sat(i64 v)
{
    return std::clamp(v, -satLimit, satLimit);
}

i64
smul(i64 a, i64 b)
{
    i64 out;
    if (__builtin_mul_overflow(a, b, &out))
        return satLimit;
    return sat(out);
}

i64
sadd(i64 a, i64 b)
{
    i64 out;
    if (__builtin_add_overflow(a, b, &out))
        return satLimit;
    return sat(out);
}

/** Wrap an address into [0, size). */
std::size_t
wrap(i64 addr, std::size_t size)
{
    i64 s = static_cast<i64>(size);
    i64 m = addr % s;
    if (m < 0)
        m += s;
    return static_cast<std::size_t>(m);
}

} // namespace

int
EngineLayer::positions() const
{
    if (kind == Kind::MatMul)
        return rows;
    return batch * outH * outW;
}

int
EngineLayer::reduction() const
{
    if (redOverride > 0)
        return redOverride;
    if (kind == Kind::MatMul)
        return red;
    return inC * kh * kw;
}

int
EngineLayer::channels() const
{
    if (kind == Kind::MatMul)
        return cols;
    return outC;
}

Tensor
EngineLayer::makeOutput() const
{
    if (kind == Kind::MatMul)
        return Tensor(1, rows, 1, cols);
    return Tensor(batch, outH, outW, outC);
}

/** All mutable machine state of one engine run. */
struct NvdlaEngine::RunState
{
    using Phase = EnginePhase;

    const Tensor *input = nullptr;
    const FaultSite *fault = nullptr;
    bool faultApplied = false;

    std::uint64_t cycle = 0;
    std::uint64_t maxCycles = 0;
    Phase phase = Phase::FetchW;

    // Datapath flip-flops.
    double fetchInputFF = 0.0;
    double fetchWeightFF = 0.0;
    double operandInputFF = 0.0;
    std::vector<double> wStage;
    std::vector<double> wHold;
    std::vector<double> psum; //!< [mac * t + pos]
    float outputFF = 0.0f;
    double biasFF = 0.0;

    // Local control flip-flops.
    std::vector<std::uint8_t> validFF;
    std::uint8_t muxSelFF = 0;

    // Global control registers.
    std::vector<i64> cfg; //!< ConfigReg::NumRegs entries
    std::vector<i64> cnt; //!< CounterReg::NumRegs entries

    // Memories (not flip-flops; not injectable in this study).
    std::vector<double> cbufIn;
    std::vector<double> cbufW;
    Tensor out;
    std::vector<std::uint64_t> wbCycle;

    // Pipeline bookkeeping for the drain write stage: flat output
    // address computed one cycle earlier (travels with outputFF).
    i64 pendingAddr = -1;
    int pendingMac = 0;

    bool timeout = false;
    bool anomaly = false;

    i64 cfgv(ConfigReg r) const { return cfg[static_cast<int>(r)]; }
    void setCfg(ConfigReg r, i64 v) { cfg[static_cast<int>(r)] = v; }
    i64 cntv(CounterReg r) const { return cnt[static_cast<int>(r)]; }
    void setCnt(CounterReg r, i64 v) { cnt[static_cast<int>(r)] = v; }
};

NvdlaEngine::NvdlaEngine(const NvdlaConfig &cfg, const EngineLayer &layer)
    : cfg_(cfg), layer_(layer)
{
    std::size_t expect_w;
    if (layer_.kind == EngineLayer::Kind::Conv) {
        fatal_if(layer_.inC <= 0 || layer_.outC <= 0 || layer_.kh <= 0 ||
                 layer_.kw <= 0 || layer_.stride <= 0 ||
                 layer_.dilation <= 0 || layer_.batch <= 0,
                 "engine conv geometry must be positive");
        expect_w = static_cast<std::size_t>(layer_.kh) * layer_.kw *
                   layer_.inC * layer_.outC;
    } else {
        fatal_if(layer_.rows <= 0 || layer_.red <= 0 || layer_.cols <= 0,
                 "engine matmul geometry must be positive");
        expect_w = static_cast<std::size_t>(layer_.red) * layer_.cols;
    }
    fatal_if(layer_.weights.size() != expect_w,
             "engine expected ", expect_w, " weights, got ",
             layer_.weights.size());
    fatal_if(!layer_.bias.empty() &&
             layer_.bias.size() !=
                 static_cast<std::size_t>(layer_.channels()),
             "engine bias size mismatch");

    // Size the modelled CBUF to the layer (capped by the configured
    // capacity) so per-run state stays small; the wrap behaviour under
    // corrupted addresses only needs a consistent region size.
    std::size_t need = std::max<std::size_t>(
        layer_.weights.size(),
        static_cast<std::size_t>(layer_.positions()) *
            std::max(1, layer_.kind == EngineLayer::Kind::MatMul
                            ? layer_.red : layer_.inC));
    cbufWords_ = std::clamp<std::size_t>(need * 2, 1024, cfg_.cbufWords);
}

bool
NvdlaEngine::integerMode() const
{
    return layer_.precision == Precision::INT8 ||
           layer_.precision == Precision::INT16;
}

double
NvdlaEngine::storeOperand(float x, bool is_weight) const
{
    switch (layer_.precision) {
      case Precision::FP32:
        return x;
      case Precision::FP16:
        return roundToHalf(x);
      case Precision::INT16:
      case Precision::INT8:
        return static_cast<double>(
            quantize(x, is_weight ? layer_.wQuant : layer_.inQuant));
    }
    panic("unknown Precision");
}

double
NvdlaEngine::flipOperand(double stored, [[maybe_unused]] bool is_weight,
                         std::uint32_t mask) const
{
    switch (layer_.precision) {
      case Precision::FP32:
        return flipBits(static_cast<float>(stored), Repr::FP32, mask);
      case Precision::FP16:
        return flipBits(static_cast<float>(stored), Repr::FP16, mask);
      case Precision::INT16:
      case Precision::INT8: {
        Repr r = layer_.precision == Precision::INT8 ? Repr::INT8
                                                     : Repr::INT16;
        auto q = static_cast<std::int32_t>(stored);
        return static_cast<double>(flipBitsInt(q, r, mask));
      }
    }
    panic("unknown Precision");
}

float
NvdlaEngine::writebackVal(double acc, float gated_bias) const
{
    double scaled;
    if (integerMode()) {
        // acc holds the integer accumulator value exactly.
        scaled = acc * layer_.inQuant.scale * layer_.wQuant.scale;
    } else {
        scaled = acc;
    }
    scaled = scaled * static_cast<double>(layer_.outScale);
    float real = static_cast<float>(scaled) + gated_bias;
    switch (layer_.precision) {
      case Precision::FP32:
        return real;
      case Precision::FP16:
        return roundToHalf(real);
      case Precision::INT16:
      case Precision::INT8:
        return dequantize(quantize(real, layer_.outQuant),
                          layer_.outQuant);
    }
    panic("unknown Precision");
}

float
NvdlaEngine::flipOutput(float stored, std::uint32_t mask) const
{
    switch (layer_.precision) {
      case Precision::FP32:
        return flipBits(stored, Repr::FP32, mask);
      case Precision::FP16:
        return flipBits(stored, Repr::FP16, mask);
      case Precision::INT16:
      case Precision::INT8: {
        Repr r = layer_.precision == Precision::INT8 ? Repr::INT8
                                                     : Repr::INT16;
        std::int32_t q = quantize(stored, layer_.outQuant);
        return dequantize(flipBitsInt(q, r, mask), layer_.outQuant);
      }
    }
    panic("unknown Precision");
}

std::int64_t
NvdlaEngine::weightAddr(const RunState &rs, i64 chan, i64 red_step,
                        bool &bad) const
{
    if (layer_.kind == EngineLayer::Kind::MatMul)
        return sadd(smul(red_step, rs.cfgv(ConfigReg::OutC)), chan);
    i64 kh = rs.cfgv(ConfigReg::KH);
    i64 kw = rs.cfgv(ConfigReg::KW);
    i64 in_c = rs.cfgv(ConfigReg::InC);
    i64 kernel = smul(kh, kw);
    if (kernel <= 0 || kw <= 0) {
        bad = true;
        return 0;
    }
    i64 ci = red_step / kernel;
    i64 rem = red_step % kernel;
    i64 ki = rem / kw;
    i64 kj = rem % kw;
    // Weight layout [kh][kw][ci][oc].
    i64 a = sadd(smul(sadd(smul(ki, kw), kj), in_c), ci);
    return sadd(smul(a, rs.cfgv(ConfigReg::OutC)), chan);
}

std::int64_t
NvdlaEngine::inputAddr(const RunState &rs, i64 pos, i64 red_step,
                       bool &bad) const
{
    if (layer_.kind == EngineLayer::Kind::MatMul)
        return sadd(smul(pos, rs.cfgv(ConfigReg::Red)), red_step);
    i64 kh = rs.cfgv(ConfigReg::KH);
    i64 kw = rs.cfgv(ConfigReg::KW);
    i64 kernel = smul(kh, kw);
    i64 out_h = rs.cfgv(ConfigReg::OutH);
    i64 out_w = rs.cfgv(ConfigReg::OutW);
    i64 plane = smul(out_h, out_w);
    if (kernel <= 0 || kw <= 0 || plane <= 0 || out_w <= 0) {
        bad = true;
        return 0;
    }
    i64 ci = red_step / kernel;
    i64 rem = red_step % kernel;
    i64 ki = rem / kw;
    i64 kj = rem % kw;
    i64 n = pos / plane;
    i64 prem = pos % plane;
    i64 oh = prem / out_w;
    i64 ow = prem % out_w;
    i64 stride = rs.cfgv(ConfigReg::Stride);
    i64 pad = rs.cfgv(ConfigReg::Pad);
    i64 dil = rs.cfgv(ConfigReg::Dilation);
    i64 ih = sadd(smul(oh, stride), smul(ki, dil)) - pad;
    i64 iw = sadd(smul(ow, stride), smul(kj, dil)) - pad;
    i64 in_h = rs.cfgv(ConfigReg::InH);
    i64 in_w = rs.cfgv(ConfigReg::InW);
    if (ih < 0 || ih >= in_h || iw < 0 || iw >= in_w)
        return -1; // padded (zero) operand
    i64 in_c = rs.cfgv(ConfigReg::InC);
    i64 a = sadd(smul(sadd(smul(n, in_h), ih), in_w), iw);
    return sadd(smul(a, in_c), ci);
}

std::int64_t
NvdlaEngine::outAddr(const RunState &rs, i64 pos, i64 chan, bool &bad) const
{
    if (layer_.kind == EngineLayer::Kind::MatMul)
        return sadd(smul(pos, rs.cfgv(ConfigReg::OutC)), chan);
    i64 out_h = rs.cfgv(ConfigReg::OutH);
    i64 out_w = rs.cfgv(ConfigReg::OutW);
    i64 plane = smul(out_h, out_w);
    if (plane <= 0 || out_w <= 0) {
        bad = true;
        return 0;
    }
    i64 n = pos / plane;
    i64 prem = pos % plane;
    i64 oh = prem / out_w;
    i64 ow = prem % out_w;
    i64 a = sadd(smul(sadd(smul(n, out_h), oh), out_w), ow);
    return sadd(smul(a, rs.cfgv(ConfigReg::OutC)), chan);
}

void
NvdlaEngine::flipRef(RunState &rs, const FFRef &ff) const
{
    int macs = cfg_.macs();
    switch (ff.cls) {
      case FFClass::FetchInput:
        rs.fetchInputFF = flipOperand(rs.fetchInputFF, false, ff.mask());
        return;
      case FFClass::FetchWeight:
        rs.fetchWeightFF =
            flipOperand(rs.fetchWeightFF, true, ff.mask());
        return;
      case FFClass::OperandInput:
        rs.operandInputFF =
            flipOperand(rs.operandInputFF, false, ff.mask());
        return;
      case FFClass::WeightStage:
        panic_if(ff.unit < 0 || ff.unit >= macs, "bad WeightStage unit");
        rs.wStage[ff.unit] =
            flipOperand(rs.wStage[ff.unit], true, ff.mask());
        return;
      case FFClass::WeightHold:
        panic_if(ff.unit < 0 || ff.unit >= macs, "bad WeightHold unit");
        rs.wHold[ff.unit] =
            flipOperand(rs.wHold[ff.unit], true, ff.mask());
        return;
      case FFClass::Psum: {
        panic_if(ff.unit < 0 ||
                 ff.unit >= macs * cfg_.t, "bad Psum unit");
        double &p = rs.psum[ff.unit];
        if (integerMode()) {
            auto v = static_cast<std::int64_t>(p);
            v ^= static_cast<std::int64_t>(ff.mask());
            p = static_cast<double>(v);
        } else {
            p = flipBits(static_cast<float>(p), Repr::FP32, ff.mask());
        }
        return;
      }
      case FFClass::OutputReg:
        rs.outputFF = flipOutput(rs.outputFF, ff.mask());
        return;
      case FFClass::BiasReg: {
        Repr r = layer_.precision == Precision::FP16 ? Repr::FP16
                                                     : Repr::FP32;
        rs.biasFF =
            flipBits(static_cast<float>(rs.biasFF), r, ff.mask());
        return;
      }
      case FFClass::LocalValid:
        panic_if(ff.unit < 0 || ff.unit >= macs, "bad LocalValid unit");
        rs.validFF[ff.unit] ^= 1;
        return;
      case FFClass::LocalMuxSel:
        rs.muxSelFF ^= 1;
        return;
      case FFClass::GlobalConfig:
        panic_if(ff.unit < 0 ||
                 ff.unit >= static_cast<int>(ConfigReg::NumRegs),
                 "bad GlobalConfig unit");
        rs.cfg[ff.unit] ^= static_cast<i64>(ff.mask());
        return;
      case FFClass::GlobalCounter:
        panic_if(ff.unit < 0 ||
                 ff.unit >= static_cast<int>(CounterReg::NumRegs),
                 "bad GlobalCounter unit");
        rs.cnt[ff.unit] ^= static_cast<i64>(ff.mask());
        return;
    }
    panic("unknown FFClass");
}

int
NvdlaEngine::ffBits(FFClass cls) const
{
    int operand_bits;
    switch (layer_.precision) {
      case Precision::FP32:
        operand_bits = 32;
        break;
      case Precision::FP16:
        operand_bits = 16;
        break;
      case Precision::INT16:
        operand_bits = 16;
        break;
      case Precision::INT8:
        operand_bits = 8;
        break;
      default:
        panic("unknown Precision");
    }
    switch (cls) {
      case FFClass::FetchInput:
      case FFClass::FetchWeight:
      case FFClass::OperandInput:
      case FFClass::WeightStage:
      case FFClass::WeightHold:
      case FFClass::OutputReg:
        return operand_bits;
      case FFClass::Psum:
        return 32;
      case FFClass::BiasReg:
        return layer_.precision == Precision::FP16 ? 16 : 32;
      case FFClass::LocalValid:
      case FFClass::LocalMuxSel:
        return 1;
      case FFClass::GlobalConfig:
      case FFClass::GlobalCounter:
        return 32;
    }
    panic("unknown FFClass");
}

std::vector<FFRef>
NvdlaEngine::ffInventory() const
{
    std::vector<FFRef> out;
    int macs = cfg_.macs();
    out.push_back({FFClass::FetchInput, 0, 0});
    out.push_back({FFClass::FetchWeight, 0, 0});
    out.push_back({FFClass::OperandInput, 0, 0});
    for (int m = 0; m < macs; ++m)
        out.push_back({FFClass::WeightStage, m, 0});
    for (int m = 0; m < macs; ++m)
        out.push_back({FFClass::WeightHold, m, 0});
    for (int s = 0; s < macs * cfg_.t; ++s)
        out.push_back({FFClass::Psum, s, 0});
    out.push_back({FFClass::OutputReg, 0, 0});
    out.push_back({FFClass::BiasReg, 0, 0});
    for (int m = 0; m < macs; ++m)
        out.push_back({FFClass::LocalValid, m, 0});
    out.push_back({FFClass::LocalMuxSel, 0, 0});
    for (int r = 0; r < static_cast<int>(ConfigReg::NumRegs); ++r)
        out.push_back({FFClass::GlobalConfig, r, 0});
    for (int r = 0; r < static_cast<int>(CounterReg::NumRegs); ++r)
        out.push_back({FFClass::GlobalCounter, r, 0});
    return out;
}

EngineResult
NvdlaEngine::run(const Tensor &input, const FaultSite *fault,
                 std::uint64_t max_cycles, bool record_trace,
                 const std::vector<MemFault> *mem_faults)
{
    using Phase = EnginePhase;
    const int macs = cfg_.macs();
    const i64 t = cfg_.t;

    std::vector<CycleInfo> trace;
    RunState rs;
    rs.input = &input;
    rs.fault = fault;
    rs.maxCycles = max_cycles;
    rs.wStage.assign(macs, 0.0);
    rs.wHold.assign(macs, 0.0);
    rs.psum.assign(static_cast<std::size_t>(macs) * cfg_.t, 0.0);
    rs.validFF.assign(macs, 0);
    rs.cfg.assign(static_cast<int>(ConfigReg::NumRegs), 0);
    rs.cnt.assign(static_cast<int>(CounterReg::NumRegs), 0);
    rs.cbufIn.assign(cbufWords_, 0.0);
    rs.cbufW.assign(cbufWords_, 0.0);
    rs.out = layer_.makeOutput();
    // Unwritten neurons stay at a stale sentinel; golden runs write all
    // of them, so sentinels surviving a fault run show up in the diff.
    rs.out.fill(0.0f);
    rs.wbCycle.assign(rs.out.size(), 0);

    // Configuration registers latch from the layer descriptor once.
    rs.setCfg(ConfigReg::OutC, layer_.channels());
    rs.setCfg(ConfigReg::Positions, layer_.positions());
    rs.setCfg(ConfigReg::Red, layer_.reduction());
    if (layer_.kind == EngineLayer::Kind::Conv) {
        rs.setCfg(ConfigReg::OutH, layer_.outH);
        rs.setCfg(ConfigReg::OutW, layer_.outW);
        rs.setCfg(ConfigReg::InC, layer_.inC);
        rs.setCfg(ConfigReg::InH, layer_.inH);
        rs.setCfg(ConfigReg::InW, layer_.inW);
        rs.setCfg(ConfigReg::KH, layer_.kh);
        rs.setCfg(ConfigReg::KW, layer_.kw);
        rs.setCfg(ConfigReg::Stride, layer_.stride);
        rs.setCfg(ConfigReg::Pad, layer_.pad);
        rs.setCfg(ConfigReg::Dilation, layer_.dilation);
        rs.setCfg(ConfigReg::Batch, layer_.batch);
    } else {
        rs.setCfg(ConfigReg::OutH, layer_.rows);
        rs.setCfg(ConfigReg::OutW, 1);
        rs.setCfg(ConfigReg::InH, layer_.rows);
        rs.setCfg(ConfigReg::InW, 1);
        rs.setCfg(ConfigReg::InC, layer_.red);
        rs.setCfg(ConfigReg::KH, 1);
        rs.setCfg(ConfigReg::KW, 1);
        rs.setCfg(ConfigReg::Stride, 1);
        rs.setCfg(ConfigReg::Pad, 0);
        rs.setCfg(ConfigReg::Dilation, 1);
        rs.setCfg(ConfigReg::Batch, 1);
    }

    const bool bias_enable = !layer_.bias.empty();
    const bool integer = integerMode();

    // Hard safety cap so a framework bug cannot spin forever even when
    // the caller passes no budget.
    const std::uint64_t hard_cap =
        rs.maxCycles ? rs.maxCycles : (std::uint64_t{1} << 33);

    while (rs.phase != Phase::Done) {
        // ---- one clock cycle ----
        rs.cycle += 1;
        if (rs.cycle > hard_cap) {
            rs.timeout = true;
            break;
        }
        if (rs.fault && !rs.faultApplied && rs.cycle == rs.fault->cycle) {
            flipRef(rs, rs.fault->ff);
            rs.faultApplied = true;
        }
        if (mem_faults) {
            for (const MemFault &mf : *mem_faults) {
                if (mf.cycle != rs.cycle)
                    continue;
                auto &region = mf.weightRegion ? rs.cbufW : rs.cbufIn;
                std::size_t a = wrap(mf.addr, cbufWords_);
                region[a] = flipOperand(region[a], mf.weightRegion,
                                        mf.mask);
            }
        }
        if (record_trace) {
            CycleInfo ci;
            ci.phase = rs.phase;
            ci.fetch = static_cast<std::int32_t>(
                sat(rs.cntv(CounterReg::Fetch)));
            ci.cg = static_cast<std::int32_t>(
                sat(rs.cntv(CounterReg::ChanGroup)));
            ci.blk = static_cast<std::int32_t>(
                sat(rs.cntv(CounterReg::Block)));
            ci.step = static_cast<std::int32_t>(
                sat(rs.cntv(CounterReg::RedStep)));
            ci.pos = static_cast<std::int32_t>(
                sat(rs.cntv(CounterReg::Pos)));
            ci.drain = static_cast<std::int32_t>(
                sat(rs.cntv(CounterReg::Drain)));
            trace.push_back(ci);
        }

        bool bad = false;
        switch (rs.phase) {
          case Phase::FetchW: {
            i64 f = rs.cntv(CounterReg::Fetch);
            i64 num_w = smul(rs.cfgv(ConfigReg::Red),
                             rs.cfgv(ConfigReg::OutC));
            if (f >= 1 && f <= num_w && !layer_.weights.empty()) {
                rs.cbufW[wrap(f - 1, cbufWords_)] = rs.fetchWeightFF;
            }
            if (f < num_w && !layer_.weights.empty()) {
                std::size_t src = wrap(f, layer_.weights.size());
                rs.fetchWeightFF =
                    storeOperand(layer_.weights[src], true);
                rs.setCnt(CounterReg::Fetch, sadd(f, 1));
            } else {
                rs.phase = Phase::FetchI;
                rs.setCnt(CounterReg::Fetch, 0);
            }
            break;
          }
          case Phase::FetchI: {
            i64 f = rs.cntv(CounterReg::Fetch);
            i64 num_i;
            if (layer_.kind == EngineLayer::Kind::MatMul) {
                num_i = smul(rs.cfgv(ConfigReg::Positions),
                             rs.cfgv(ConfigReg::Red));
            } else {
                num_i = smul(smul(rs.cfgv(ConfigReg::Batch),
                                  smul(rs.cfgv(ConfigReg::InH),
                                       rs.cfgv(ConfigReg::InW))),
                             rs.cfgv(ConfigReg::InC));
            }
            if (f >= 1 && f <= num_i) {
                rs.cbufIn[wrap(f - 1, cbufWords_)] = rs.fetchInputFF;
            }
            if (f < num_i && input.size() > 0) {
                std::size_t src = wrap(f, input.size());
                rs.fetchInputFF = storeOperand(input[src], false);
                rs.setCnt(CounterReg::Fetch, sadd(f, 1));
            } else {
                rs.phase = Phase::BlockStart;
                rs.setCnt(CounterReg::ChanGroup, 0);
                rs.setCnt(CounterReg::Block, 0);
            }
            break;
          }
          case Phase::BlockStart: {
            i64 cg = rs.cntv(CounterReg::ChanGroup);
            if (smul(cg, macs) >= rs.cfgv(ConfigReg::OutC)) {
                rs.phase = Phase::Done;
                break;
            }
            i64 blk = rs.cntv(CounterReg::Block);
            if (smul(blk, t) >= rs.cfgv(ConfigReg::Positions)) {
                rs.setCnt(CounterReg::ChanGroup, sadd(cg, 1));
                rs.setCnt(CounterReg::Block, 0);
                break; // next cycle re-evaluates BlockStart
            }
            // Reset all partial sums for the new block.
            std::fill(rs.psum.begin(), rs.psum.end(), 0.0);
            rs.setCnt(CounterReg::RedStep, 0);
            rs.phase = Phase::LoadStage;
            break;
          }
          case Phase::LoadStage: {
            i64 step = rs.cntv(CounterReg::RedStep);
            if (step >= rs.cfgv(ConfigReg::Red)) {
                rs.setCnt(CounterReg::Drain, 0);
                rs.phase = Phase::Drain;
                break;
            }
            i64 cg = rs.cntv(CounterReg::ChanGroup);
            for (int m = 0; m < macs; ++m) {
                i64 chan = sadd(smul(cg, macs), m);
                i64 a = weightAddr(rs, chan, step, bad);
                rs.wStage[m] =
                    bad ? 0.0 : rs.cbufW[wrap(a, cbufWords_)];
            }
            rs.phase = Phase::LoadHold;
            break;
          }
          case Phase::LoadHold: {
            for (int m = 0; m < macs; ++m)
                rs.wHold[m] = rs.wStage[m];
            // Pre-load the first input operand of the block.
            i64 blk = rs.cntv(CounterReg::Block);
            i64 step = rs.cntv(CounterReg::RedStep);
            i64 pos0 = smul(blk, t);
            i64 a = inputAddr(rs, pos0, step, bad);
            if (bad || a < 0)
                rs.operandInputFF = 0.0;
            else
                rs.operandInputFF = rs.cbufIn[wrap(a, cbufWords_)];
            rs.setCnt(CounterReg::Pos, 0);
            rs.phase = Phase::Mac;
            break;
          }
          case Phase::Mac: {
            i64 p = rs.cntv(CounterReg::Pos);
            i64 blk = rs.cntv(CounterReg::Block);
            i64 step = rs.cntv(CounterReg::RedStep);
            i64 blk_start = smul(blk, t);
            i64 blk_len = std::clamp<i64>(
                rs.cfgv(ConfigReg::Positions) - blk_start, 0, t);
            if (p >= blk_len) {
                rs.setCnt(CounterReg::RedStep, sadd(step, 1));
                rs.phase = Phase::LoadStage;
                break;
            }
            // All MACs consume the broadcast input with their held
            // weights; the psum slot for (m, p) accumulates.
            double in = rs.operandInputFF;
            std::size_t pslot = static_cast<std::size_t>(
                wrap(p, static_cast<std::size_t>(t)));
            for (int m = 0; m < macs; ++m) {
                std::size_t idx =
                    static_cast<std::size_t>(m) * cfg_.t + pslot;
                if (integer) {
                    auto prod = static_cast<std::int64_t>(rs.wHold[m]) *
                                static_cast<std::int64_t>(in);
                    rs.psum[idx] = static_cast<double>(
                        static_cast<std::int64_t>(rs.psum[idx]) + prod);
                } else {
                    float acc = static_cast<float>(rs.psum[idx]);
                    acc += static_cast<float>(rs.wHold[m]) *
                           static_cast<float>(in);
                    rs.psum[idx] = static_cast<double>(acc);
                }
            }
            // Pre-load the next broadcast input.
            if (p + 1 < blk_len) {
                i64 a = inputAddr(rs, sadd(blk_start, p + 1), step, bad);
                if (bad || a < 0)
                    rs.operandInputFF = 0.0;
                else
                    rs.operandInputFF =
                        rs.cbufIn[wrap(a, cbufWords_)];
            }
            rs.setCnt(CounterReg::Pos, sadd(p, 1));
            break;
          }
          case Phase::Drain: {
            i64 d = rs.cntv(CounterReg::Drain);
            i64 cg = rs.cntv(CounterReg::ChanGroup);
            i64 blk = rs.cntv(CounterReg::Block);
            i64 blk_start = smul(blk, t);
            i64 blk_len = std::clamp<i64>(
                rs.cfgv(ConfigReg::Positions) - blk_start, 0, t);
            i64 n_drain = smul(blk_len, macs);

            // Write stage: commit the previous neuron's outputFF.
            if (d >= 2 && d <= n_drain + 1) {
                int m = rs.pendingMac;
                bool valid = rs.validFF[m];
                rs.validFF[m] = 0;
                if (valid && rs.pendingAddr >= 0) {
                    std::size_t a =
                        wrap(rs.pendingAddr, rs.out.size());
                    rs.out[a] = rs.outputFF;
                    rs.wbCycle[a] = rs.cycle;
                }
            }
            // Compute stage: writeback of neuron j = d - 1.
            if (d >= 1 && d <= n_drain) {
                i64 j = d - 1;
                int m = static_cast<int>(j % macs);
                i64 p = j / macs;
                i64 chan = sadd(smul(cg, macs), m);
                std::size_t pslot = static_cast<std::size_t>(
                    wrap(p, static_cast<std::size_t>(t)));
                double acc =
                    rs.psum[static_cast<std::size_t>(m) * cfg_.t + pslot];
                float gated = rs.muxSelFF
                    ? static_cast<float>(rs.biasFF) : 0.0f;
                rs.outputFF = writebackVal(acc, gated);
                rs.validFF[m] = chan < rs.cfgv(ConfigReg::OutC) ? 1 : 0;
                rs.pendingMac = m;
                i64 a = outAddr(rs, sadd(blk_start, p), chan, bad);
                // The address generator only emits addresses for real
                // output channels; lanes beyond OutC produce no write.
                rs.pendingAddr =
                    (bad || chan >= rs.cfgv(ConfigReg::OutC)) ? -1 : a;
            }
            // Bias stage: latch the bias operand for neuron j = d.
            if (d <= n_drain - 1) {
                i64 chan = sadd(smul(cg, macs), d % macs);
                double b = 0.0;
                if (bias_enable && chan >= 0 &&
                    chan < static_cast<i64>(layer_.bias.size()))
                    b = layer_.bias[static_cast<std::size_t>(chan)];
                rs.biasFF = b;
            }
            // The SDP mux select is re-driven by control every cycle.
            rs.muxSelFF = bias_enable ? 1 : 0;

            if (d >= n_drain + 1) {
                rs.setCnt(CounterReg::Block, sadd(blk, 1));
                rs.phase = Phase::BlockStart;
            } else {
                rs.setCnt(CounterReg::Drain, sadd(d, 1));
            }
            break;
          }
          case Phase::Done:
            break;
        }
        if (bad) {
            rs.anomaly = true;
            break;
        }
    }

    EngineResult res;
    res.output = std::move(rs.out);
    res.cycles = rs.cycle;
    res.timeout = rs.timeout;
    res.anomaly = rs.anomaly;
    res.writebackCycle = std::move(rs.wbCycle);
    res.trace = std::move(trace);
    return res;
}

std::uint64_t
NvdlaEngine::goldenCycles(const Tensor &input)
{
    EngineResult res = run(input, nullptr, 0);
    panic_if(res.timeout || res.anomaly,
             "golden engine run did not complete cleanly");
    return res.cycles;
}

} // namespace fidelity
