/**
 * @file
 * Analytical model of an Eyeriss-like row-stationary accelerator.
 *
 * Implements the dataflow of the paper's Fig. 2(b): a k x k systolic
 * MAC array where the units of a column compute one output row in
 * consecutive cycles and consecutive columns compute consecutive rows;
 * weights travel to the neighbouring column each cycle (so one weight
 * value reaches k columns), and an input value is reused diagonally and
 * across t output channels inside a MAC.  The model produces the faulty
 * output-neuron sets of the b1/b2/b3 example targets, cross-checked in
 * tests against the generic Reuse Factor Analysis (Algorithm 1)
 * descriptors — demonstrating FIdelity's applicability beyond NVDLA.
 */

#ifndef FIDELITY_ACCEL_EYERISS_HH
#define FIDELITY_ACCEL_EYERISS_HH

#include <vector>

#include "tensor/tensor.hh"

namespace fidelity
{

/** Geometry of the Eyeriss-like array. */
struct EyerissConfig
{
    int k = 4;  //!< k x k systolic array
    int t = 16; //!< temporal reuse across t output channels
};

/** Faulty-neuron analysis of the Fig. 2(b) example targets. */
class EyerissModel
{
  public:
    EyerissModel(const EyerissConfig &cfg, int out_h, int out_w,
                 int out_c);

    const EyerissConfig &config() const { return cfg_; }

    /**
     * Target b1: a weight FF inside a MAC unit, whose value is passed
     * across the k columns.  RF = k.
     * @param row0 Output row the first column is working on.
     * @param col Output column position of the affected operations.
     * @param chan Output channel.
     * @return Up to k neurons in k consecutive rows of one column.
     */
    std::vector<NeuronIndex> weightFaultNeurons(int row0, int col,
                                                int chan) const;

    /**
     * Target b2: an input FF reused diagonally across columns and
     * across t output channels inside each MAC.  RF = k * t.
     * @param row0 First affected output row.
     * @param col Output column (the example uses the last column).
     * @param chan0 First affected output channel.
     */
    std::vector<NeuronIndex> inputFaultNeurons(int row0, int col,
                                               int chan0) const;

    /**
     * Target b3: a bias FF feeding one BiasAdd unit with no temporal
     * reuse.  RF = 1.
     */
    std::vector<NeuronIndex> biasFaultNeurons(int row, int col,
                                              int chan) const;

    /** Reuse factors of the three targets (k, k*t, 1). */
    int weightRf() const { return cfg_.k; }
    int inputRf() const { return cfg_.k * cfg_.t; }
    int biasRf() const { return 1; }

  private:
    bool inRange(const NeuronIndex &n) const;

    EyerissConfig cfg_;
    int outH_;
    int outW_;
    int outC_;
};

} // namespace fidelity

#endif // FIDELITY_ACCEL_EYERISS_HH
