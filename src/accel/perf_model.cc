#include "accel/perf_model.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace fidelity
{

double
LayerTiming::macActiveFrac() const
{
    if (totalCycles == 0)
        return 0.0;
    return static_cast<double>(macCycles) /
           static_cast<double>(totalCycles);
}

double
LayerTiming::fetchActiveFrac() const
{
    if (totalCycles == 0)
        return 0.0;
    return static_cast<double>(fetchCycles) /
           static_cast<double>(totalCycles);
}

double
LayerTiming::drainActiveFrac() const
{
    if (totalCycles == 0)
        return 0.0;
    return static_cast<double>(drainCycles) /
           static_cast<double>(totalCycles);
}

LayerTiming
estimateTiming(const NvdlaConfig &cfg, const EngineLayer &layer)
{
    LayerTiming lt;
    const std::int64_t macs = cfg.macs();
    const std::int64_t t = cfg.t;
    const std::int64_t red = layer.reduction();
    const std::int64_t positions = layer.positions();
    const std::int64_t channels = layer.channels();

    std::uint64_t num_w = layer.weights.size();
    std::uint64_t num_i;
    if (layer.kind == EngineLayer::Kind::MatMul) {
        num_i = static_cast<std::uint64_t>(layer.rows) * layer.red;
    } else {
        num_i = static_cast<std::uint64_t>(layer.batch) * layer.inH *
                layer.inW * layer.inC;
    }
    lt.fetchCycles = (num_w + 1) + (num_i + 1);

    std::int64_t cgroups = (channels + macs - 1) / macs;
    std::int64_t blocks = (positions + t - 1) / t;

    std::uint64_t mac_cycles = 0;
    std::uint64_t drain_cycles = 0;
    for (std::int64_t blk = 0; blk < blocks; ++blk) {
        std::int64_t blk_len =
            std::min<std::int64_t>(t, positions - blk * t);
        // BlockStart + per-step (stage, hold, blk_len MACs, exit) +
        // the LoadStage cycle that hands over to the drain.
        mac_cycles += 2 + static_cast<std::uint64_t>(red) * (blk_len + 3);
        drain_cycles += static_cast<std::uint64_t>(blk_len) * macs + 2;
    }
    mac_cycles *= cgroups;
    drain_cycles *= cgroups;
    // One BlockStart cycle advances each finished channel group, and a
    // final one detects completion.
    mac_cycles += cgroups + 1;

    lt.macCycles = mac_cycles;
    lt.drainCycles = drain_cycles;
    lt.totalCycles = lt.fetchCycles + lt.macCycles + lt.drainCycles;
    return lt;
}

} // namespace fidelity
