/**
 * @file
 * RTL-style fault-injection driver for the NVDLA-like engine.
 *
 * Plays the role of the paper's Synopsys-VCS fault-injection testbench:
 * run the layer once fault-free (recording the schedule trace), then
 * re-run with a bit flipped at a chosen (flip-flop, cycle) site and
 * diff the outputs to obtain the set of faulty output neurons, their
 * values, and the order they were produced.  A SiteContext decoded from
 * the golden trace tells the validation harness exactly which software
 * fault model a given site corresponds to.
 */

#ifndef FIDELITY_ACCEL_NVDLA_FI_HH
#define FIDELITY_ACCEL_NVDLA_FI_HH

#include <vector>

#include "accel/nvdla_core.hh"
#include "nn/conv.hh"
#include "nn/fc.hh"
#include "nn/matmul.hh"
#include "sim/rng.hh"

namespace fidelity
{

/** One output neuron whose value differs from the golden run. */
struct FaultyNeuron
{
    std::size_t flat = 0; //!< flat index into the output tensor
    float golden = 0.0f;
    float faulty = 0.0f;
    std::uint64_t wbCycle = 0; //!< writeback cycle in the faulty run
};

/** Outcome of one RTL-style fault-injection experiment. */
struct RtlOutcome
{
    bool timeout = false;
    bool anomaly = false;
    std::uint64_t cycles = 0;
    std::vector<FaultyNeuron> faulty; //!< sorted by flat index

    /** No architecturally visible effect. */
    bool masked() const { return !timeout && !anomaly && faulty.empty(); }
};

/** Golden schedule context of a fault site (decoded from the trace). */
struct SiteContext
{
    EnginePhase phase = EnginePhase::Done;
    std::int64_t fetch = 0;
    std::int64_t cg = 0;
    std::int64_t blk = 0;
    std::int64_t step = 0;
    std::int64_t pos = 0;
    std::int64_t drain = 0;
    std::int64_t blkStart = 0;
    std::int64_t blkLen = 0;
};

/** Fault-injection testbench around one engine layer. */
class NvdlaFi
{
  public:
    /**
     * @param cfg Engine configuration.
     * @param layer The work to run.
     * @param input Layer input (see NvdlaEngine::run).
     */
    NvdlaFi(const NvdlaConfig &cfg, const EngineLayer &layer,
            Tensor input);

    /** The fault-free reference run (with schedule trace). */
    const EngineResult &golden() const { return golden_; }

    std::uint64_t goldenCycles() const { return golden_.cycles; }

    /** Run one experiment at the given site. */
    RtlOutcome inject(const FaultSite &site);

    /** Run one experiment with one or more memory-word faults. */
    RtlOutcome injectMem(const std::vector<MemFault> &faults);

    /** First compute-phase cycle (after both fetch phases). */
    std::uint64_t computeStartCycle() const;

    /**
     * Sample a uniformly random fault site: each (FF bit, cycle) pair
     * is equally likely, matching statistical FF fault injection.
     */
    FaultSite sampleSite(Rng &rng) const;

    /**
     * Sample a fault site directed at one flip-flop class, drawing the
     * cycle from the phases where that class is architecturally live
     * (e.g. drain cycles for the local-control bits).  Used to build
     * statistically meaningful per-class validation sets for rare
     * classes, as the paper does for local control.
     */
    FaultSite sampleSiteDirected(FFClass cls, Rng &rng) const;

    /** Decode the golden schedule context at the site's cycle. */
    SiteContext context(const FaultSite &site) const;

    const NvdlaEngine &engine() const { return engine_; }

  private:
    NvdlaEngine engine_;
    Tensor input_;
    EngineResult golden_;
    std::vector<FFRef> inventory_;
    std::vector<double> bitWeights_;

    /** Golden-trace cycle numbers per engine phase (1-based). */
    std::vector<std::vector<std::uint32_t>> cyclesByPhase_;
};

/** Build an EngineLayer mirroring a (groups == 1) Conv2D layer. */
EngineLayer engineLayerFromConv(const Conv2D &conv, const Tensor &input);

/** Build an EngineLayer mirroring an FC layer on the given input. */
EngineLayer engineLayerFromFC(const FC &fc, const Tensor &input);

/**
 * Build an EngineLayer mirroring a MatMulAB layer; the B operand is
 * streamed through the engine's weight port.
 * @return The engine layer plus the flattened A input expected by run().
 */
EngineLayer engineLayerFromMatMul(const MatMulAB &mm, const Tensor &a,
                                  const Tensor &b);

} // namespace fidelity

#endif // FIDELITY_ACCEL_NVDLA_FI_HH
