/**
 * @file
 * Flip-flop identification for the accelerator model.
 *
 * The cycle-level NVDLA-like engine exposes every architecturally
 * relevant flip-flop as a named, addressable state element so a fault
 * site — a (flip-flop, cycle) pair, the paper's transient-error
 * abstraction — can be injected during simulation, standing in for the
 * paper's RTL fault injection.
 */

#ifndef FIDELITY_ACCEL_FF_HH
#define FIDELITY_ACCEL_FF_HH

#include <cstdint>
#include <string>

namespace fidelity
{

/** Microarchitectural class of a flip-flop in the engine. */
enum class FFClass
{
    // Datapath, before CBUF (the fetch pipeline).
    FetchInput,   //!< input word travelling into CBUF
    FetchWeight,  //!< weight word travelling into CBUF
    // Datapath, between CBUF and the MAC array.
    OperandInput, //!< shared input operand broadcast to all MACs
    WeightStage,  //!< per-MAC weight staging register (target a1)
    WeightHold,   //!< per-MAC weight hold register, kept t cycles (a2)
    // Datapath, inside and after the MAC array.
    Psum,         //!< per-(MAC, position) partial-sum accumulator
    OutputReg,    //!< drained output register entering the SDP
    BiasReg,      //!< bias operand register in the SDP
    // Local control.
    LocalValid,   //!< per-MAC output-valid bit
    LocalMuxSel,  //!< SDP bias-path mux select
    // Global control.
    GlobalConfig, //!< layer configuration register (dims, stride, ...)
    GlobalCounter //!< sequencing counter (loops, addresses)
};

/** Printable flip-flop class name. */
const char *ffClassName(FFClass cls);

/** Configuration registers of the engine (GlobalConfig units). */
enum class ConfigReg
{
    OutC,     //!< output channels (conv) or output columns (matmul)
    Positions,//!< total output positions (n*oh*ow, or matmul rows)
    Red,      //!< reduction length per neuron
    OutH,
    OutW,
    InC,
    InH,
    InW,
    KH,
    KW,
    Stride,
    Pad,
    Dilation,
    Batch,
    NumRegs
};

/** Sequencing counters of the engine (GlobalCounter units). */
enum class CounterReg
{
    ChanGroup, //!< output channel-group index
    Block,     //!< position-block index
    RedStep,   //!< reduction step within a block
    Pos,       //!< position within a block
    Fetch,     //!< fetch-phase element counter
    Drain,     //!< drain-phase pipeline counter
    NumRegs
};

/** Printable register names. */
const char *configRegName(ConfigReg r);
const char *counterRegName(CounterReg r);

/** Addressable reference to one flip-flop instance. */
struct FFRef
{
    FFClass cls = FFClass::OperandInput;
    int unit = 0; //!< MAC index, psum slot, or register id per class
    int bit = 0;  //!< bit position to flip

    /**
     * Additional bits flipped in the same cycle (a mask OR-ed with
     * 1 << bit) — the paper's "multiple single-cycle bit-flips in a
     * single register" abstraction.  0 for the common single-bit case.
     */
    std::uint32_t extraMask = 0;

    /** Full flip mask. */
    std::uint32_t mask() const { return (1u << bit) | extraMask; }

    std::string str() const;
};

/** A transient-fault injection site: one FF, one cycle. */
struct FaultSite
{
    FFRef ff;
    std::uint64_t cycle = 0;

    std::string str() const;
};

/**
 * A transient fault in an on-chip memory word (Sec. III-E: FIdelity's
 * reuse-factor machinery extends to memory errors; a corrupted word
 * behaves like the pre-buffer datapath FF that loaded it).
 */
struct MemFault
{
    bool weightRegion = true; //!< weight CBUF region vs input region
    std::int64_t addr = 0;    //!< word address within the region
    std::uint32_t mask = 1;   //!< bits to flip in the stored word
    std::uint64_t cycle = 1;  //!< injection cycle
};

} // namespace fidelity

#endif // FIDELITY_ACCEL_FF_HH
