/**
 * @file
 * The scalar kernel table: fixed-width lane arrays and per-lane loops,
 * compiled at the baseline ISA.  This is the reference every vector
 * table must match bit-for-bit, the `setEnabled(false)` twin, and the
 * only table in a `FIDELITY_NO_SIMD` build.
 */

#include "simd/kernels_impl.hh"

namespace fidelity::simd
{

const KernelTable *
kernelTableScalar()
{
    static const KernelTable t = {
        "scalar",
        &gemmF32T<Scalar8>,
        &gemmI64T<Scalar4>,
        &gemmNarrowScalarK,
        &batchMacF32T<Scalar8, Scalar4>,
        &batchMacI64T<Scalar4>,
        &batchMacNarrowScalarK,
        &addF32T<Scalar8>,
        &subF32T<Scalar8>,
        &mulF32T<Scalar8>,
        &scaleShiftF32T<Scalar8>,
        &reluF32T<Scalar8>,
        &lreluF32T<Scalar8>,
        &roundToHalfScalarK,
        &quantizeScalarK,
    };
    return &t;
}

} // namespace fidelity::simd
