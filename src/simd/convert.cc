#include "simd/convert.hh"

#include "simd/simd.hh"

namespace fidelity::simd
{

void
roundToHalfBatch(const float *in, float *out, std::size_t n)
{
    // table() already honours the runtime toggle and any forced
    // backend; the scalar table's entry is the per-element loop.
    table().roundToHalfB(in, out, n);
}

void
quantizeBatch(const float *in, std::int32_t *out, std::size_t n,
              const QuantParams &qp)
{
    table().quantizeB(in, out, n, qp.scale, qp.qmin(), qp.qmax());
}

} // namespace fidelity::simd
