#include "simd/convert.hh"

#include "simd/simd.hh"
#include "tensor/bitops.hh"

namespace fidelity::simd
{

void
roundToHalfBatch(const float *in, float *out, std::size_t n)
{
    std::size_t i = 0;
#if !defined(FIDELITY_NO_SIMD) && defined(__F16C__) && defined(__AVX__)
    if (enabled()) {
        const __m256 sign_mask =
            _mm256_castsi256_ps(_mm256_set1_epi32(0x80000000));
        const __m256 canon_nan =
            _mm256_castsi256_ps(_mm256_set1_epi32(0x7fc00000));
        for (; i + 8 <= n; i += 8) {
            __m256 x = _mm256_loadu_ps(in + i);
            __m128i h = _mm256_cvtps_ph(
                x, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
            __m256 y = _mm256_cvtph_ps(h);
            // The hardware keeps NaN payload bits the software path
            // drops; canonicalise unordered lanes to sign|0x7fc00000.
            __m256 unord = _mm256_cmp_ps(x, x, _CMP_UNORD_Q);
            if (_mm256_movemask_ps(unord)) {
                __m256 canon = _mm256_or_ps(
                    _mm256_and_ps(x, sign_mask), canon_nan);
                y = _mm256_blendv_ps(y, canon, unord);
            }
            _mm256_storeu_ps(out + i, y);
        }
    }
#endif
    for (; i < n; ++i)
        out[i] = roundToHalf(in[i]);
}

void
quantizeBatch(const float *in, std::int32_t *out, std::size_t n,
              const QuantParams &qp)
{
    std::size_t i = 0;
#if !defined(FIDELITY_NO_SIMD) && defined(__AVX__)
    if (enabled()) {
        const __m256d scale = _mm256_set1_pd(qp.scale);
        const __m256d lo = _mm256_set1_pd(static_cast<double>(qp.qmin()));
        const __m256d hi = _mm256_set1_pd(static_cast<double>(qp.qmax()));
        for (; i + 4 <= n; i += 4) {
            __m128 xf = _mm_loadu_ps(in + i);
            if (_mm_movemask_ps(_mm_cmpunord_ps(xf, xf))) {
                // NaN operands take the scalar path so the (platform-
                // defined) NaN-to-int conversion stays identical.
                for (std::size_t j = i; j < i + 4; ++j)
                    out[j] = quantize(in[j], qp);
                continue;
            }
            __m256d x = _mm256_cvtps_pd(xf);
            __m256d q = _mm256_div_pd(x, scale);
            q = _mm256_round_pd(
                q, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
            q = _mm256_max_pd(_mm256_min_pd(q, hi), lo);
            __m128i r = _mm256_cvttpd_epi32(q);
            _mm_storeu_si128(reinterpret_cast<__m128i *>(out + i), r);
        }
    }
#endif
    for (; i < n; ++i)
        out[i] = quantize(in[i], qp);
}

} // namespace fidelity::simd
