/**
 * @file
 * The SSE2 kernel table — the x86-64 baseline, so it needs no extra
 * compile flags and is always runnable on any x86-64 host.  Float
 * kernels run 4-wide over the fixed 8-wide packs; the narrow integer
 * kernels use `pmaddwd` (SSE2); the wide integer MAC has no signed
 * 32x32->64 multiply below SSE4.1 and stays on the scalar ops (the
 * narrow path carries integer performance on this table).
 */

#include "simd/kernels_impl.hh"

namespace fidelity::simd
{

const KernelTable *
kernelTableSse2()
{
#if defined(FIDELITY_KIMPL_X86)
    static const KernelTable t = {
        "sse2",
        &gemmF32T<Sse2Backend>,
        &gemmI64T<Scalar4>,
        &gemmNarrowSse2K,
        &batchMacF32T<Sse2Backend, Sse2Backend>,
        &batchMacI64T<Scalar4>,
        &batchMacNarrowSse2KAnyW,
        &addF32T<Sse2Backend>,
        &subF32T<Sse2Backend>,
        &mulF32T<Sse2Backend>,
        &scaleShiftF32T<Sse2Backend>,
        &reluF32T<Sse2Backend>,
        &lreluF32T<Sse2Backend>,
        &roundToHalfScalarK,
        &quantizeScalarK,
    };
    return &t;
#else
    return nullptr;
#endif
}

} // namespace fidelity::simd
