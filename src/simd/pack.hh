/**
 * @file
 * Lane-blocked packing of MAC-layer weights.
 *
 * The vector kernels walk one output block's reduction as a contiguous
 * stream: layout [colBlock][k][lane], where `cols` is the independent
 * output dimension (output channels / FC units / matmul columns), `k`
 * walks the canonical reduction order, and `lane` spans `L` adjacent
 * output columns.  Columns are padded up to a multiple of L with
 * zeros, so every block load is full-width and in-bounds; lanes beyond
 * the real column count are computed and discarded.
 *
 * Packing happens once per layer at construction (FP32), and lazily
 * again when the precision or quantisation ranges change — never in
 * the per-forward hot loop.
 */

#ifndef FIDELITY_SIMD_PACK_HH
#define FIDELITY_SIMD_PACK_HH

#include <cstddef>
#include <vector>

namespace fidelity::simd
{

/** Number of lane-blocks covering `cols` at lane width `L`. */
constexpr int
packBlocks(int cols, int L)
{
    return (cols + L - 1) / L;
}

/** Packed element count for a [red][cols] weight matrix. */
constexpr std::size_t
packSize(int red, int cols, int L)
{
    return static_cast<std::size_t>(packBlocks(cols, L)) * red * L;
}

/**
 * Scatter a logically [red][cols] source into [colBlock][red][L].
 * `get(k, c)` returns the converted weight of reduction step k and
 * output column c; out-of-range lanes are zero-filled.
 */
template <typename T, class Get>
void
packLaneBlocked(int red, int cols, int L, Get get, T *dst)
{
    std::size_t o = 0;
    for (int cb = 0; cb < packBlocks(cols, L); ++cb)
        for (int k = 0; k < red; ++k)
            for (int l = 0; l < L; ++l, ++o) {
                int c = cb * L + l;
                dst[o] = c < cols ? get(k, c) : T{};
            }
}

} // namespace fidelity::simd

#endif // FIDELITY_SIMD_PACK_HH
