/**
 * @file
 * Lane-blocked packing of MAC-layer weights.
 *
 * The vector kernels walk one output block's reduction as a contiguous
 * stream.  Two layouts exist, both with *fixed* lane widths shared by
 * every backend (simd.hh), so a pack built once is valid under any
 * runtime-dispatched or forced backend:
 *
 *  - Wide: [colBlock][k][lane] over float or int32, block width
 *    kF32Lanes / kI64Lanes, zero-padded columns.  `cols` is the
 *    independent output dimension (output channels / FC units /
 *    matmul columns), `k` walks the canonical reduction order.
 *
 *  - Narrow: [colBlock][kPair][lane][2] over int16, block width
 *    kNarrowLanes.  Adjacent reduction steps (2p, 2p+1) interleave
 *    per lane so `pmaddwd` forms both products and their int32 sum in
 *    one instruction; an odd reduction pads the final pair with a
 *    *zero weight*, which keeps the kernel exact regardless of the
 *    paired operand value.  Quantised weights always fit int16
 *    (|w| <= 2^(bits-1), bits <= 16), so narrowing is lossless.
 *
 * Packing happens once per layer at construction (FP32), and lazily
 * again when the precision or quantisation ranges change — never in
 * the per-forward hot loop.
 */

#ifndef FIDELITY_SIMD_PACK_HH
#define FIDELITY_SIMD_PACK_HH

#include <cstddef>
#include <cstdint>
#include <cstdlib>

#include "simd/simd.hh"

namespace fidelity::simd
{

/** Number of lane-blocks covering `cols` at lane width `L`. */
constexpr int
packBlocks(int cols, int L)
{
    return (cols + L - 1) / L;
}

/** Packed element count for a [red][cols] weight matrix. */
constexpr std::size_t
packSize(int red, int cols, int L)
{
    return static_cast<std::size_t>(packBlocks(cols, L)) * red * L;
}

/**
 * Scatter a logically [red][cols] source into [colBlock][red][L].
 * `get(k, c)` returns the converted weight of reduction step k and
 * output column c; out-of-range lanes are zero-filled.
 */
template <typename T, class Get>
void
packLaneBlocked(int red, int cols, int L, Get get, T *dst)
{
    std::size_t o = 0;
    for (int cb = 0; cb < packBlocks(cols, L); ++cb)
        for (int k = 0; k < red; ++k)
            for (int l = 0; l < L; ++l, ++o) {
                int c = cb * L + l;
                dst[o] = c < cols ? get(k, c) : T{};
            }
}

/** Reduction pairs covering `red` steps (odd reductions round up). */
constexpr int
packPairs(int red)
{
    return (red + 1) / 2;
}

/** Packed element count of the narrow [colBlock][kPair][lane][2]
 *  layout for a [red][cols] weight matrix. */
constexpr std::size_t
packNarrowSize(int red, int cols)
{
    return static_cast<std::size_t>(packBlocks(cols, kNarrowLanes)) *
           packPairs(red) * kNarrowLanes * 2;
}

/**
 * Scatter a logically [red][cols] quantised weight matrix into the
 * narrow pair-interleaved layout.  `get(k, c)` returns the int32
 * quantised weight; out-of-range pairs and lanes are zero-filled
 * (the zero *weight* is what makes the odd-reduction pad exact).
 */
template <class Get>
void
packNarrow(int red, int cols, Get get, std::int16_t *dst)
{
    constexpr int L = kNarrowLanes;
    std::size_t o = 0;
    for (int cb = 0; cb < packBlocks(cols, L); ++cb)
        for (int p = 0; p < packPairs(red); ++p)
            for (int l = 0; l < L; ++l)
                for (int j = 0; j < 2; ++j, ++o) {
                    int c = cb * L + l;
                    int k = 2 * p + j;
                    dst[o] = (c < cols && k < red)
                                 ? static_cast<std::int16_t>(get(k, c))
                                 : std::int16_t{0};
                }
}

/**
 * Statically proven overflow bound for the narrow kernels: the
 * largest number of reduction *pairs* whose int32 pair-sum
 * accumulation cannot overflow, given |x| <= 2^(bits-1) (quantize()
 * clamps operands to [qmin, qmax]) and |w| <= maxAbsW (scanned from
 * the actual quantised weights at pack time).
 *
 * One pair contributes |x0*w0 + x1*w1| <= 2 * 2^(bits-1) * maxAbsW;
 * requiring that bound itself to fit int32 also rules out `pmaddwd`'s
 * single internal wrap case (all four operands -2^15).  Returns 0
 * when even one pair could overflow — the caller must then use the
 * wide int64 path.  Chunks of this many pairs accumulate exactly in
 * int32 and spill exactly into int64, so the narrow result equals
 * the wide kernel's bit for bit (integer reassociation is legal iff
 * nothing overflows — this is the proof the tests exercise).
 */
inline int
narrowChunkPairs(int bits, std::int32_t maxAbsW)
{
    const std::int64_t kInt32Max = 2147483647;
    // Cap so `p + chunk` arithmetic stays comfortably in int range.
    const std::int64_t kCap = std::int64_t{1} << 28;
    const std::int64_t bx = std::int64_t{1} << (bits - 1);
    const std::int64_t pairBound = 2 * bx * maxAbsW;
    if (pairBound == 0)
        return static_cast<int>(kCap); // all-zero weights: any chunk
    if (pairBound > kInt32Max)
        return 0; // narrow path illegal
    const std::int64_t chunk = kInt32Max / pairBound;
    return static_cast<int>(chunk < kCap ? chunk : kCap);
}

/** Whether the narrow path is both legal and profitable. */
inline bool
narrowEligible(int chunkPairs)
{
    return chunkPairs >= kNarrowMinChunk;
}

} // namespace fidelity::simd

#endif // FIDELITY_SIMD_PACK_HH
