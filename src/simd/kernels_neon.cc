/**
 * @file
 * The NEON kernel table (aarch64, where NEON is baseline — no
 * per-file flags needed).  Float and wide-int kernels use the NEON
 * wrappers; the narrow integer kernels and the converters run the
 * exact scalar implementations — correct by construction, and the
 * x86-only pmaddwd trick has no direct NEON port here yet.
 */

#include "simd/kernels_impl.hh"

namespace fidelity::simd
{

const KernelTable *
kernelTableNeon()
{
#if defined(FIDELITY_KIMPL_NEON)
    static const KernelTable t = {
        "neon",
        &gemmF32T<NeonBackend>,
        &gemmI64T<NeonBackend>,
        &gemmNarrowScalarK,
        &batchMacF32T<NeonBackend, NeonBackend>,
        &batchMacI64T<NeonBackend>,
        &batchMacNarrowScalarK,
        &addF32T<NeonBackend>,
        &subF32T<NeonBackend>,
        &mulF32T<NeonBackend>,
        &scaleShiftF32T<NeonBackend>,
        &reluF32T<NeonBackend>,
        &lreluF32T<NeonBackend>,
        &roundToHalfScalarK,
        &quantizeScalarK,
    };
    return &t;
#else
    return nullptr;
#endif
}

} // namespace fidelity::simd
