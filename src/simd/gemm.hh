/**
 * @file
 * Dense drivers shared by the FC and MatMul layers.
 *
 * The input is a [positions][red] operand stream already converted to
 * stored form; the weights are packed in the fixed-width layouts of
 * pack.hh.  Each driver runs one `KernelTable` microkernel per
 * position (all column blocks in one call), then walks the real
 * columns applying the caller's writeback.  Lanes span independent
 * output columns, each accumulating in the canonical reduction order
 * with unfused multiply-adds — bit-identical to the scalar kernel and
 * to computeNeuron().
 *
 * Callers provide the accumulator scratch (`acc`, one padded block
 * row: packBlocks(cols, L) * L elements) so steady-state campaigns
 * reuse arena storage.
 */

#ifndef FIDELITY_SIMD_GEMM_HH
#define FIDELITY_SIMD_GEMM_HH

#include <cstddef>
#include <cstdint>

#include "simd/pack.hh"
#include "simd/simd.hh"

namespace fidelity::simd
{

/**
 * out[pos * cols + c] = wb(sum_k xs[pos * red + k] * packed[k, c], c)
 * for every position and column; `wb(acc, c)` applies bias/writeback.
 */
template <class WB>
void
denseFloat(const KernelTable &kt, const float *xs, std::size_t positions,
           int red, int cols, const float *packed, float *acc,
           float *out, WB wb)
{
    const int blocks = packBlocks(cols, kF32Lanes);
    for (std::size_t pos = 0; pos < positions; ++pos) {
        kt.gemmF32(xs + pos * red, red, blocks, packed, acc);
        float *ob = out + pos * cols;
        for (int c = 0; c < cols; ++c)
            ob[c] = wb(static_cast<double>(acc[c]), c);
    }
}

/** Wide integer twin: int64 lane accumulators over int32 operands. */
template <class WB>
void
denseInt(const KernelTable &kt, const std::int32_t *xq,
         std::size_t positions, int red, int cols,
         const std::int32_t *packed, std::int64_t *acc, float *out,
         WB wb)
{
    const int blocks = packBlocks(cols, kI64Lanes);
    for (std::size_t pos = 0; pos < positions; ++pos) {
        kt.gemmI64(xq + pos * red, red, blocks, packed, acc);
        float *ob = out + pos * cols;
        for (int c = 0; c < cols; ++c)
            ob[c] = wb(acc[c], c);
    }
}

/**
 * Narrow integer driver over the pair-interleaved int16 pack.  `xs`
 * holds the int16-narrowed stored-form operands and must be readable
 * one element past the final position (odd reductions read a padded
 * pair whose weight is zero — the caller allocates n + 1 elements
 * with the extra one zeroed).  Exact by the chunk bound, so results
 * are bit-identical to denseInt and computeNeuron().
 */
template <class WB>
void
denseNarrow(const KernelTable &kt, const std::int16_t *xs,
            std::size_t positions, int red, int cols,
            const std::int16_t *packed, int chunkPairs,
            std::int64_t *acc, float *out, WB wb)
{
    const int blocks = packBlocks(cols, kNarrowLanes);
    const int redPairs = packPairs(red);
    for (std::size_t pos = 0; pos < positions; ++pos) {
        kt.gemmNarrow(xs + pos * red, redPairs, blocks, packed,
                      chunkPairs, acc);
        float *ob = out + pos * cols;
        for (int c = 0; c < cols; ++c)
            ob[c] = wb(acc[c], c);
    }
}

} // namespace fidelity::simd

#endif // FIDELITY_SIMD_GEMM_HH
