/**
 * @file
 * Lane-blocked dense kernels shared by the FC and MatMul layers.
 *
 * The input is a [positions][red] operand stream already converted to
 * stored form; the weights are packed [colBlock][red][L] (see pack.hh).
 * Lanes span independent output columns, each accumulating in the
 * canonical reduction order with unfused multiply-adds — bit-identical
 * to the scalar kernel and to computeNeuron().
 */

#ifndef FIDELITY_SIMD_GEMM_HH
#define FIDELITY_SIMD_GEMM_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "simd/pack.hh"
#include "simd/simd.hh"

namespace fidelity::simd
{

/**
 * out[pos * cols + c] = wb(sum_k xs[pos * red + k] * packed[k, c], c)
 * for every position and column; `wb(acc, c)` applies bias/writeback.
 */
template <class B, class WB>
void
denseFloat(const float *xs, std::size_t positions, int red, int cols,
           const float *packed, float *out, WB wb)
{
    constexpr int L = B::kF32Lanes;
    const int blocks = packBlocks(cols, L);
    const std::size_t blkStride = static_cast<std::size_t>(red) * L;

    float lanes[L];
    for (std::size_t pos = 0; pos < positions; ++pos) {
        const float *xb = xs + pos * red;
        float *ob = out + pos * cols;
        for (int blk = 0; blk < blocks; ++blk) {
            const float *wrow = packed + blk * blkStride;
            auto acc = B::f32zero();
            for (int k = 0; k < red; ++k) {
                acc = B::f32mulAcc(acc, B::f32broadcast(xb[k]),
                                   B::f32load(wrow));
                wrow += L;
            }
            B::f32store(lanes, acc);
            int e = std::min(cols - blk * L, L);
            for (int l = 0; l < e; ++l)
                ob[blk * L + l] =
                    wb(static_cast<double>(lanes[l]), blk * L + l);
        }
    }
}

/** Integer twin: int64 lane accumulators over int32 operands. */
template <class B, class WB>
void
denseInt(const std::int32_t *xq, std::size_t positions, int red, int cols,
         const std::int32_t *packed, float *out, WB wb)
{
    constexpr int L = B::kI64Lanes;
    const int blocks = packBlocks(cols, L);
    const std::size_t blkStride = static_cast<std::size_t>(red) * L;

    std::int64_t lanes[L];
    for (std::size_t pos = 0; pos < positions; ++pos) {
        const std::int32_t *xb = xq + pos * red;
        float *ob = out + pos * cols;
        for (int blk = 0; blk < blocks; ++blk) {
            const std::int32_t *wrow = packed + blk * blkStride;
            auto acc = B::i64zero();
            for (int k = 0; k < red; ++k) {
                acc = B::i64mulAcc(acc, xb[k], wrow);
                wrow += L;
            }
            B::i64store(lanes, acc);
            int e = std::min(cols - blk * L, L);
            for (int l = 0; l < e; ++l)
                ob[blk * L + l] = wb(lanes[l], blk * L + l);
        }
    }
}

} // namespace fidelity::simd

#endif // FIDELITY_SIMD_GEMM_HH
