/**
 * @file
 * Vectorized batch operand conversions, bit-identical to the scalar
 * per-element paths (`roundToHalf`, `quantize`).
 *
 * The MAC layers convert a whole input tensor into the active
 * precision's stored form before the dense kernel runs; these batch
 * routines are that pass.  Each falls back to the scalar element
 * function when the backend lacks the instruction (or when the runtime
 * SIMD toggle is off), and the differential tests assert equality over
 * adversarial bit patterns (NaN payloads, infinities, subnormals,
 * round-to-nearest-even ties).
 */

#ifndef FIDELITY_SIMD_CONVERT_HH
#define FIDELITY_SIMD_CONVERT_HH

#include <cstddef>
#include <cstdint>

#include "tensor/quant.hh"

namespace fidelity::simd
{

/**
 * out[i] = roundToHalf(in[i]): round each float through binary16 and
 * back (F16C when available).  NaNs canonicalise to sign | 0x7fc00000
 * exactly like the scalar software conversion.  In-place is allowed.
 */
void roundToHalfBatch(const float *in, float *out, std::size_t n);

/** out[i] = quantize(in[i], qp) (4-wide double path under AVX). */
void quantizeBatch(const float *in, std::int32_t *out, std::size_t n,
                   const QuantParams &qp);

} // namespace fidelity::simd

#endif // FIDELITY_SIMD_CONVERT_HH
