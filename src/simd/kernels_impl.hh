/**
 * @file
 * Kernel-table implementations, included ONLY by the per-backend
 * translation units (kernels_scalar.cc / kernels_sse2.cc /
 * kernels_avx2.cc / kernels_neon.cc).
 *
 * Everything here lives in an anonymous namespace on purpose: each
 * including TU is compiled with its own ISA flags, and internal
 * linkage guarantees the linker can never merge (comdat-fold) an
 * AVX2-compiled instantiation into a TU that must stay runnable on a
 * baseline host.  Nothing outside `simd.hh`, the standard library,
 * and the out-of-line `roundToHalf()` may be referenced, for the same
 * reason: calling an *inline* repo function from an ISA TU would emit
 * an ISA-flavoured comdat copy of it.
 *
 * Bit-exactness contract (see DESIGN.md §8/§13): float kernels use
 * unfused multiply-then-add in the canonical reduction order, one
 * independent output per lane.  Integer kernels are exact, so any
 * association is legal *iff* no intermediate overflows; the narrow
 * kernels accumulate pair-sums in int32 for at most `chunkPairs`
 * pairs — a bound the packer proves from |x| <= 2^(bits-1) and the
 * scanned max |w| — then spill to int64, which therefore equals the
 * wide kernel's int64 total bit for bit.
 */

#ifndef FIDELITY_SIMD_KERNELS_IMPL_HH
#define FIDELITY_SIMD_KERNELS_IMPL_HH

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>

#include "simd/simd.hh"

#if !defined(FIDELITY_NO_SIMD)
#if defined(__SSE2__) || defined(_M_X64) || defined(_M_AMD64)
#include <immintrin.h>
#define FIDELITY_KIMPL_X86 1
#elif defined(__ARM_NEON) || defined(__ARM_NEON__)
#include <arm_neon.h>
#define FIDELITY_KIMPL_NEON 1
#endif
#endif

namespace fidelity
{
// Out-of-line in tensor/bitops.cc; safe to call across ISA TUs.
float roundToHalf(float x);
} // namespace fidelity

namespace fidelity::simd
{
namespace
{

// ---------------------------------------------------------------- //
// Backend wrapper structs: the per-lane primitive ops.              //
// ---------------------------------------------------------------- //

/**
 * Fixed-width scalar backend: plain arrays and per-lane loops.  The
 * reference semantics every vector backend must match bit-for-bit.
 */
template <int LF, int LI>
struct ScalarBackendT
{
    static constexpr int kF32W = LF;
    static constexpr int kI64W = LI;

    struct F32
    {
        float v[LF];
    };

    static F32
    f32zero()
    {
        F32 r;
        for (int i = 0; i < LF; ++i)
            r.v[i] = 0.0f;
        return r;
    }

    static F32
    f32load(const float *p)
    {
        F32 r;
        for (int i = 0; i < LF; ++i)
            r.v[i] = p[i];
        return r;
    }

    static F32
    f32broadcast(float x)
    {
        F32 r;
        for (int i = 0; i < LF; ++i)
            r.v[i] = x;
        return r;
    }

    /** acc + a*b per lane; multiply rounds before the add (no FMA). */
    static F32
    f32mulAcc(F32 acc, F32 a, F32 b)
    {
        F32 r;
        for (int i = 0; i < LF; ++i) {
            float prod = a.v[i] * b.v[i];
            r.v[i] = acc.v[i] + prod;
        }
        return r;
    }

    static F32
    f32add(F32 a, F32 b)
    {
        F32 r;
        for (int i = 0; i < LF; ++i)
            r.v[i] = a.v[i] + b.v[i];
        return r;
    }

    static F32
    f32sub(F32 a, F32 b)
    {
        F32 r;
        for (int i = 0; i < LF; ++i)
            r.v[i] = a.v[i] - b.v[i];
        return r;
    }

    static F32
    f32mul(F32 a, F32 b)
    {
        F32 r;
        for (int i = 0; i < LF; ++i)
            r.v[i] = a.v[i] * b.v[i];
        return r;
    }

    /** Per lane: x > 0 ? a : b (NaN lanes select b, like the scalar). */
    static F32
    f32selectGtZero(F32 x, F32 a, F32 b)
    {
        F32 r;
        for (int i = 0; i < LF; ++i)
            r.v[i] = x.v[i] > 0.0f ? a.v[i] : b.v[i];
        return r;
    }

    static void
    f32store(float *p, F32 v)
    {
        for (int i = 0; i < LF; ++i)
            p[i] = v.v[i];
    }

    struct I64
    {
        std::int64_t v[LI];
    };

    static I64
    i64zero()
    {
        I64 r;
        for (int i = 0; i < LI; ++i)
            r.v[i] = 0;
        return r;
    }

    /** acc[l] += (int64)x * w[l] over kI64W int32 weights. */
    static I64
    i64mulAcc(I64 acc, std::int32_t x, const std::int32_t *w)
    {
        I64 r;
        for (int i = 0; i < LI; ++i)
            r.v[i] = acc.v[i] +
                     static_cast<std::int64_t>(x) *
                         static_cast<std::int64_t>(w[i]);
        return r;
    }

    static void
    i64store(std::int64_t *p, I64 v)
    {
        for (int i = 0; i < LI; ++i)
            p[i] = v.v[i];
    }
};

using Scalar8 = ScalarBackendT<8, 4>;
using Scalar4 = ScalarBackendT<4, 4>;

#if defined(FIDELITY_KIMPL_X86)

/** SSE2 (x86-64 baseline): 4 float lanes; the wide int MAC has no
 *  32x32->64 multiply below SSE4.1, so it stays on the scalar ops. */
struct Sse2Backend
{
    static constexpr int kF32W = 4;
    static constexpr int kI64W = 4;

    using F32 = __m128;

    static F32 f32zero() { return _mm_setzero_ps(); }
    static F32 f32load(const float *p) { return _mm_loadu_ps(p); }
    static F32 f32broadcast(float x) { return _mm_set1_ps(x); }

    static F32
    f32mulAcc(F32 acc, F32 a, F32 b)
    {
        // Deliberately mul-then-add: an FMA's single rounding would
        // break bit-identity with the scalar kernels.
        return _mm_add_ps(acc, _mm_mul_ps(a, b));
    }

    static F32 f32add(F32 a, F32 b) { return _mm_add_ps(a, b); }
    static F32 f32sub(F32 a, F32 b) { return _mm_sub_ps(a, b); }
    static F32 f32mul(F32 a, F32 b) { return _mm_mul_ps(a, b); }

    static F32
    f32selectGtZero(F32 x, F32 a, F32 b)
    {
        // Ordered GT: NaN compares false and selects b, matching
        // `x > 0 ? a : b` scalar semantics.
        __m128 m = _mm_cmpgt_ps(x, _mm_setzero_ps());
        return _mm_or_ps(_mm_and_ps(m, a), _mm_andnot_ps(m, b));
    }

    static void f32store(float *p, F32 v) { _mm_storeu_ps(p, v); }

    using I64 = Scalar4::I64;
    static I64 i64zero() { return Scalar4::i64zero(); }
    static I64
    i64mulAcc(I64 acc, std::int32_t x, const std::int32_t *w)
    {
        return Scalar4::i64mulAcc(acc, x, w);
    }
    static void i64store(std::int64_t *p, I64 v)
    {
        Scalar4::i64store(p, v);
    }
};

#endif // FIDELITY_KIMPL_X86

#if defined(FIDELITY_KIMPL_X86) && defined(__AVX2__)

/** AVX2: 8 float lanes, 4 int64 MAC lanes. */
struct Avx2Backend
{
    static constexpr int kF32W = 8;
    static constexpr int kI64W = 4;

    using F32 = __m256;

    static F32 f32zero() { return _mm256_setzero_ps(); }
    static F32 f32load(const float *p) { return _mm256_loadu_ps(p); }
    static F32 f32broadcast(float x) { return _mm256_set1_ps(x); }

    static F32
    f32mulAcc(F32 acc, F32 a, F32 b)
    {
        return _mm256_add_ps(acc, _mm256_mul_ps(a, b));
    }

    static F32 f32add(F32 a, F32 b) { return _mm256_add_ps(a, b); }
    static F32 f32sub(F32 a, F32 b) { return _mm256_sub_ps(a, b); }
    static F32 f32mul(F32 a, F32 b) { return _mm256_mul_ps(a, b); }

    static F32
    f32selectGtZero(F32 x, F32 a, F32 b)
    {
        __m256 m = _mm256_cmp_ps(x, _mm256_setzero_ps(), _CMP_GT_OQ);
        return _mm256_blendv_ps(b, a, m);
    }

    static void f32store(float *p, F32 v) { _mm256_storeu_ps(p, v); }

    using I64 = __m256i;

    static I64 i64zero() { return _mm256_setzero_si256(); }

    static I64
    i64mulAcc(I64 acc, std::int32_t x, const std::int32_t *w)
    {
        __m256i wv = _mm256_cvtepi32_epi64(
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(w)));
        // mul_epi32 reads the low signed 32 bits of each 64-bit lane;
        // zero-extending x keeps exactly those bits.
        __m256i xv = _mm256_set1_epi64x(
            static_cast<std::int64_t>(static_cast<std::uint32_t>(x)));
        return _mm256_add_epi64(acc, _mm256_mul_epi32(xv, wv));
    }

    static void
    i64store(std::int64_t *p, I64 v)
    {
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(p), v);
    }
};

#endif // AVX2

#if defined(FIDELITY_KIMPL_NEON)

/** NEON: 4 float lanes, 2 int64 MAC lanes via vmlal_s32. */
struct NeonBackend
{
    static constexpr int kF32W = 4;
    static constexpr int kI64W = 2;

    using F32 = float32x4_t;

    static F32 f32zero() { return vdupq_n_f32(0.0f); }
    static F32 f32load(const float *p) { return vld1q_f32(p); }
    static F32 f32broadcast(float x) { return vdupq_n_f32(x); }

    static F32
    f32mulAcc(F32 acc, F32 a, F32 b)
    {
        // vmlaq may contract to a fused multiply-add; keep the rounding
        // of the scalar kernel with an explicit mul + add.
        return vaddq_f32(acc, vmulq_f32(a, b));
    }

    static F32 f32add(F32 a, F32 b) { return vaddq_f32(a, b); }
    static F32 f32sub(F32 a, F32 b) { return vsubq_f32(a, b); }
    static F32 f32mul(F32 a, F32 b) { return vmulq_f32(a, b); }

    static F32
    f32selectGtZero(F32 x, F32 a, F32 b)
    {
        uint32x4_t m = vcgtq_f32(x, vdupq_n_f32(0.0f));
        return vbslq_f32(m, a, b);
    }

    static void f32store(float *p, F32 v) { vst1q_f32(p, v); }

    using I64 = int64x2_t;

    static I64 i64zero() { return vdupq_n_s64(0); }

    static I64
    i64mulAcc(I64 acc, std::int32_t x, const std::int32_t *w)
    {
        return vmlal_s32(acc, vdup_n_s32(x), vld1_s32(w));
    }

    static void i64store(std::int64_t *p, I64 v) { vst1q_s64(p, v); }
};

#endif // FIDELITY_KIMPL_NEON

// ---------------------------------------------------------------- //
// GEMM microkernels over the fixed-width packed streams.            //
// ---------------------------------------------------------------- //

/** acc[b*8+l] = sum_k x[k] * packed[(b*red+k)*8 + l]; a backend
 *  narrower than the 8-wide pack walks each block in lane slices. */
template <class B>
void
gemmF32T(const float *x, int red, int nblocks, const float *packed,
         float *acc)
{
    constexpr int PL = kF32Lanes;
    constexpr int L = B::kF32W;
    static_assert(PL % L == 0, "pack width must be a lane multiple");
    const std::size_t blkStride = static_cast<std::size_t>(red) * PL;
    for (int b = 0; b < nblocks; ++b) {
        const float *wb = packed + b * blkStride;
        float *ab = acc + b * PL;
        for (int off = 0; off < PL; off += L) {
            auto a = B::f32zero();
            const float *wr = wb + off;
            for (int k = 0; k < red; ++k, wr += PL)
                a = B::f32mulAcc(a, B::f32broadcast(x[k]),
                                 B::f32load(wr));
            B::f32store(ab + off, a);
        }
    }
}

/** Wide integer twin over the kI64Lanes-wide int32 pack. */
template <class B>
void
gemmI64T(const std::int32_t *x, int red, int nblocks,
         const std::int32_t *packed, std::int64_t *acc)
{
    constexpr int PL = kI64Lanes;
    constexpr int L = B::kI64W;
    static_assert(PL % L == 0, "pack width must be a lane multiple");
    const std::size_t blkStride = static_cast<std::size_t>(red) * PL;
    for (int b = 0; b < nblocks; ++b) {
        const std::int32_t *wb = packed + b * blkStride;
        std::int64_t *ab = acc + b * PL;
        for (int off = 0; off < PL; off += L) {
            auto a = B::i64zero();
            const std::int32_t *wr = wb + off;
            for (int k = 0; k < red; ++k, wr += PL)
                a = B::i64mulAcc(a, x[k], wr);
            B::i64store(ab + off, a);
        }
    }
}

/**
 * Narrow reference kernel: pair-sums in int32 chunks, spilled to
 * int64.  Exact (the packer's chunk bound forbids overflow), hence
 * bit-identical to the wide kernel and to any vector narrow kernel.
 */
inline void
gemmNarrowScalarK(const std::int16_t *x, int redPairs, int nblocks,
                  const std::int16_t *packed, int chunkPairs,
                  std::int64_t *acc)
{
    constexpr int L = kNarrowLanes;
    const std::size_t blkStride =
        static_cast<std::size_t>(redPairs) * 2 * L;
    for (int b = 0; b < nblocks; ++b) {
        const std::int16_t *wb = packed + b * blkStride;
        std::int64_t c64[L] = {};
        int p = 0;
        while (p < redPairs) {
            const int end = std::min(p + chunkPairs, redPairs);
            std::int32_t c32[L] = {};
            for (; p < end; ++p) {
                const std::int32_t x0 = x[2 * p];
                const std::int32_t x1 = x[2 * p + 1];
                const std::int16_t *wr = wb + p * 2 * L;
                for (int l = 0; l < L; ++l)
                    c32[l] += x0 * wr[2 * l] + x1 * wr[2 * l + 1];
            }
            for (int l = 0; l < L; ++l)
                c64[l] += c32[l];
        }
        for (int l = 0; l < L; ++l)
            acc[b * L + l] = c64[l];
    }
}

#if defined(FIDELITY_KIMPL_X86)

/** Broadcast one operand pair (two adjacent int16) to every 32-bit
 *  element.  Reading two int16 as one int32 is the pmaddwd layout. */
inline std::int32_t
loadPair32(const std::int16_t *p)
{
    std::int32_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

/** SSE2 narrow kernel: two 128-bit pmaddwd streams per 8-lane block. */
inline void
gemmNarrowSse2K(const std::int16_t *x, int redPairs, int nblocks,
                const std::int16_t *packed, int chunkPairs,
                std::int64_t *acc)
{
    constexpr int L = kNarrowLanes;
    const std::size_t blkStride =
        static_cast<std::size_t>(redPairs) * 2 * L;
    for (int b = 0; b < nblocks; ++b) {
        const std::int16_t *wb = packed + b * blkStride;
        std::int64_t c64[L] = {};
        int p = 0;
        while (p < redPairs) {
            const int end = std::min(p + chunkPairs, redPairs);
            __m128i ca = _mm_setzero_si128();
            __m128i cb = _mm_setzero_si128();
            for (; p < end; ++p) {
                const __m128i xv = _mm_set1_epi32(loadPair32(x + 2 * p));
                const std::int16_t *wr = wb + p * 2 * L;
                __m128i w0 = _mm_loadu_si128(
                    reinterpret_cast<const __m128i *>(wr));
                __m128i w1 = _mm_loadu_si128(
                    reinterpret_cast<const __m128i *>(wr + 8));
                ca = _mm_add_epi32(ca, _mm_madd_epi16(w0, xv));
                cb = _mm_add_epi32(cb, _mm_madd_epi16(w1, xv));
            }
            alignas(16) std::int32_t t[L];
            _mm_store_si128(reinterpret_cast<__m128i *>(t), ca);
            _mm_store_si128(reinterpret_cast<__m128i *>(t + 4), cb);
            for (int l = 0; l < L; ++l)
                c64[l] += t[l];
        }
        for (int l = 0; l < L; ++l)
            acc[b * L + l] = c64[l];
    }
}

/** SSE2 narrow batched MAC over W%4==0 lane rows. */
inline void
batchMacNarrowSse2K(const std::int16_t *xg, const std::int16_t *w,
                    std::size_t redPairs, std::size_t wstride,
                    int chunkPairs, int W, std::int64_t *acc)
{
    for (int j = 0; j < W; j += 4) {
        std::int64_t c64[4] = {};
        std::size_t p = 0;
        while (p < redPairs) {
            const std::size_t end =
                std::min(p + static_cast<std::size_t>(chunkPairs),
                         redPairs);
            __m128i c32 = _mm_setzero_si128();
            for (; p < end; ++p) {
                const __m128i wv =
                    _mm_set1_epi32(loadPair32(w + p * wstride));
                __m128i r0 = _mm_loadl_epi64(
                    reinterpret_cast<const __m128i *>(xg + 2 * p * W +
                                                      j));
                __m128i r1 = _mm_loadl_epi64(
                    reinterpret_cast<const __m128i *>(
                        xg + (2 * p + 1) * W + j));
                // Interleave the two k rows into per-lane pairs so
                // pmaddwd forms x0*w0 + x1*w1 per lane.
                __m128i pairs = _mm_unpacklo_epi16(r0, r1);
                c32 = _mm_add_epi32(c32, _mm_madd_epi16(pairs, wv));
            }
            alignas(16) std::int32_t t[4];
            _mm_store_si128(reinterpret_cast<__m128i *>(t), c32);
            for (int l = 0; l < 4; ++l)
                c64[l] += t[l];
        }
        for (int l = 0; l < 4; ++l)
            acc[j + l] = c64[l];
    }
}

#endif // FIDELITY_KIMPL_X86

/** Exact scalar narrow batched MAC (any W up to kNarrowLanes). */
inline void
batchMacNarrowScalarK(const std::int16_t *xg, const std::int16_t *w,
                      std::size_t redPairs, std::size_t wstride,
                      int chunkPairs, int W, std::int64_t *acc)
{
    constexpr int kMaxW = kNarrowLanes;
    std::int64_t c64[kMaxW] = {};
    std::size_t p = 0;
    while (p < redPairs) {
        const std::size_t end = std::min(
            p + static_cast<std::size_t>(chunkPairs), redPairs);
        std::int32_t c32[kMaxW] = {};
        for (; p < end; ++p) {
            const std::int32_t w0 = w[p * wstride];
            const std::int32_t w1 = w[p * wstride + 1];
            const std::int16_t *r0 = xg + 2 * p * W;
            for (int l = 0; l < W; ++l)
                c32[l] += w0 * r0[l] + w1 * r0[W + l];
        }
        for (int l = 0; l < W; ++l)
            c64[l] += c32[l];
    }
    for (int l = 0; l < W; ++l)
        acc[l] = c64[l];
}

#if defined(FIDELITY_KIMPL_X86)

/** SSE2 narrow batched entry: vector for W%4==0, scalar otherwise. */
inline void
batchMacNarrowSse2KAnyW(const std::int16_t *xg, const std::int16_t *w,
                        std::size_t redPairs, std::size_t wstride,
                        int chunkPairs, int W, std::int64_t *acc)
{
    if (W % 4 == 0)
        return batchMacNarrowSse2K(xg, w, redPairs, wstride,
                                   chunkPairs, W, acc);
    batchMacNarrowScalarK(xg, w, redPairs, wstride, chunkPairs, W,
                          acc);
}

#endif // FIDELITY_KIMPL_X86

#if defined(FIDELITY_KIMPL_X86) && defined(__AVX2__)

/** AVX2 narrow kernel: one 256-bit pmaddwd stream per 8-lane block. */
inline void
gemmNarrowAvx2K(const std::int16_t *x, int redPairs, int nblocks,
                const std::int16_t *packed, int chunkPairs,
                std::int64_t *acc)
{
    constexpr int L = kNarrowLanes;
    const std::size_t blkStride =
        static_cast<std::size_t>(redPairs) * 2 * L;
    for (int b = 0; b < nblocks; ++b) {
        const std::int16_t *wb = packed + b * blkStride;
        __m256i lo64 = _mm256_setzero_si256();
        __m256i hi64 = _mm256_setzero_si256();
        int p = 0;
        while (p < redPairs) {
            const int end = std::min(p + chunkPairs, redPairs);
            __m256i c32 = _mm256_setzero_si256();
            for (; p < end; ++p) {
                const __m256i xv =
                    _mm256_set1_epi32(loadPair32(x + 2 * p));
                __m256i wv = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(wb + p * 2 * L));
                c32 = _mm256_add_epi32(c32, _mm256_madd_epi16(wv, xv));
            }
            lo64 = _mm256_add_epi64(
                lo64, _mm256_cvtepi32_epi64(_mm256_castsi256_si128(c32)));
            hi64 = _mm256_add_epi64(
                hi64,
                _mm256_cvtepi32_epi64(_mm256_extracti128_si256(c32, 1)));
        }
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(acc + b * L),
                            lo64);
        _mm256_storeu_si256(
            reinterpret_cast<__m256i *>(acc + b * L + 4), hi64);
    }
}

/** AVX2 narrow batched MAC for W==8; other widths use the SSE2 one. */
inline void
batchMacNarrowAvx2K(const std::int16_t *xg, const std::int16_t *w,
                    std::size_t redPairs, std::size_t wstride,
                    int chunkPairs, int W, std::int64_t *acc)
{
    if (W != 8)
        return batchMacNarrowSse2KAnyW(xg, w, redPairs, wstride,
                                       chunkPairs, W, acc);
    __m256i lo64 = _mm256_setzero_si256();
    __m256i hi64 = _mm256_setzero_si256();
    std::size_t p = 0;
    while (p < redPairs) {
        const std::size_t end = std::min(
            p + static_cast<std::size_t>(chunkPairs), redPairs);
        __m256i c32 = _mm256_setzero_si256();
        for (; p < end; ++p) {
            const __m256i wv =
                _mm256_set1_epi32(loadPair32(w + p * wstride));
            __m128i r0 = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(xg + 2 * p * 8));
            __m128i r1 = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(xg +
                                                  (2 * p + 1) * 8));
            __m128i plo = _mm_unpacklo_epi16(r0, r1); // lanes 0..3
            __m128i phi = _mm_unpackhi_epi16(r0, r1); // lanes 4..7
            __m256i pairs = _mm256_set_m128i(phi, plo);
            c32 = _mm256_add_epi32(c32, _mm256_madd_epi16(pairs, wv));
        }
        lo64 = _mm256_add_epi64(
            lo64, _mm256_cvtepi32_epi64(_mm256_castsi256_si128(c32)));
        hi64 = _mm256_add_epi64(
            hi64,
            _mm256_cvtepi32_epi64(_mm256_extracti128_si256(c32, 1)));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(acc), lo64);
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(acc + 4), hi64);
}

#endif // AVX2

// ---------------------------------------------------------------- //
// Lane-minor batched MAC rows (fault-batched engine).               //
// ---------------------------------------------------------------- //

template <class B>
void
batchMacF32W(const float *xg, const float *w, std::size_t red,
             std::size_t wstride, int W, float *acc)
{
    constexpr int L = B::kF32W;
    for (int j = 0; j < W; j += L) {
        auto a = B::f32zero();
        for (std::size_t k = 0; k < red; ++k)
            a = B::f32mulAcc(a, B::f32load(xg + k * W + j),
                             B::f32broadcast(w[k * wstride]));
        B::f32store(acc + j, a);
    }
}

/** Full-width backend when W divides, half-width else, scalar last. */
template <class B, class BH>
void
batchMacF32T(const float *xg, const float *w, std::size_t red,
             std::size_t wstride, int W, float *acc)
{
    if (W % B::kF32W == 0)
        return batchMacF32W<B>(xg, w, red, wstride, W, acc);
    if (W % BH::kF32W == 0)
        return batchMacF32W<BH>(xg, w, red, wstride, W, acc);
    for (int l = 0; l < W; ++l) {
        float a = 0.0f;
        for (std::size_t k = 0; k < red; ++k) {
            float prod = xg[k * W + l] * w[k * wstride];
            a += prod;
        }
        acc[l] = a;
    }
}

template <class B>
void
batchMacI64T(const std::int32_t *xg, const std::int32_t *w,
             std::size_t red, std::size_t wstride, int W,
             std::int64_t *acc)
{
    constexpr int L = B::kI64W;
    if (W % L == 0) {
        for (int j = 0; j < W; j += L) {
            auto a = B::i64zero();
            for (std::size_t k = 0; k < red; ++k)
                a = B::i64mulAcc(a, w[k * wstride], xg + k * W + j);
            B::i64store(acc + j, a);
        }
        return;
    }
    for (int l = 0; l < W; ++l) {
        std::int64_t a = 0;
        for (std::size_t k = 0; k < red; ++k)
            a += static_cast<std::int64_t>(w[k * wstride]) *
                 static_cast<std::int64_t>(xg[k * W + l]);
        acc[l] = a;
    }
}

// ---------------------------------------------------------------- //
// Streaming elementwise maps.                                       //
// ---------------------------------------------------------------- //

template <class B>
void
addF32T(const float *a, const float *b, float *o, std::size_t n)
{
    constexpr int L = B::kF32W;
    std::size_t i = 0;
    for (; i + L <= n; i += L)
        B::f32store(o + i, B::f32add(B::f32load(a + i),
                                     B::f32load(b + i)));
    for (; i < n; ++i)
        o[i] = a[i] + b[i];
}

template <class B>
void
subF32T(const float *a, const float *b, float *o, std::size_t n)
{
    constexpr int L = B::kF32W;
    std::size_t i = 0;
    for (; i + L <= n; i += L)
        B::f32store(o + i, B::f32sub(B::f32load(a + i),
                                     B::f32load(b + i)));
    for (; i < n; ++i)
        o[i] = a[i] - b[i];
}

template <class B>
void
mulF32T(const float *a, const float *b, float *o, std::size_t n)
{
    constexpr int L = B::kF32W;
    std::size_t i = 0;
    for (; i + L <= n; i += L)
        B::f32store(o + i, B::f32mul(B::f32load(a + i),
                                     B::f32load(b + i)));
    for (; i < n; ++i)
        o[i] = a[i] * b[i];
}

template <class B>
void
scaleShiftF32T(const float *x, float scale, float shift, float *o,
               std::size_t n)
{
    constexpr int L = B::kF32W;
    const auto vs = B::f32broadcast(scale);
    const auto vt = B::f32broadcast(shift);
    std::size_t i = 0;
    for (; i + L <= n; i += L)
        B::f32store(o + i, B::f32add(B::f32mul(vs, B::f32load(x + i)),
                                     vt));
    for (; i < n; ++i)
        o[i] = scale * x[i] + shift;
}

template <class B>
void
reluF32T(const float *x, float *o, std::size_t n)
{
    constexpr int L = B::kF32W;
    const auto zero = B::f32zero();
    std::size_t i = 0;
    for (; i + L <= n; i += L) {
        auto vx = B::f32load(x + i);
        B::f32store(o + i, B::f32selectGtZero(vx, vx, zero));
    }
    for (; i < n; ++i)
        o[i] = x[i] > 0.0f ? x[i] : 0.0f;
}

template <class B>
void
lreluF32T(const float *x, float alpha, float *o, std::size_t n)
{
    constexpr int L = B::kF32W;
    const auto va = B::f32broadcast(alpha);
    std::size_t i = 0;
    for (; i + L <= n; i += L) {
        auto vx = B::f32load(x + i);
        B::f32store(o + i,
                    B::f32selectGtZero(vx, vx, B::f32mul(va, vx)));
    }
    for (; i < n; ++i)
        o[i] = x[i] > 0.0f ? x[i] : alpha * x[i];
}

// ---------------------------------------------------------------- //
// Stored-form converters.                                           //
// ---------------------------------------------------------------- //

/** Local replica of tensor/quant.cc quantize(): same expression, same
 *  order, so results (NaN conversion included) are bit-identical.
 *  Internal linkage — tensor/quant.cc stays the public definition. */
inline std::int32_t
quantOne(float x, double scale, std::int32_t qmin, std::int32_t qmax)
{
    double q = std::nearbyint(static_cast<double>(x) / scale);
    q = std::clamp(q, static_cast<double>(qmin),
                   static_cast<double>(qmax));
    return static_cast<std::int32_t>(q);
}

inline void
roundToHalfScalarK(const float *in, float *out, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = fidelity::roundToHalf(in[i]);
}

inline void
quantizeScalarK(const float *in, std::int32_t *out, std::size_t n,
                double scale, std::int32_t qmin, std::int32_t qmax)
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = quantOne(in[i], scale, qmin, qmax);
}

#if defined(FIDELITY_KIMPL_X86) && defined(__AVX2__) && \
    defined(__F16C__)

inline void
roundToHalfAvx2K(const float *in, float *out, std::size_t n)
{
    const __m256 sign_mask =
        _mm256_castsi256_ps(_mm256_set1_epi32(0x80000000));
    const __m256 canon_nan =
        _mm256_castsi256_ps(_mm256_set1_epi32(0x7fc00000));
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        __m256 x = _mm256_loadu_ps(in + i);
        __m128i h = _mm256_cvtps_ph(
            x, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
        __m256 y = _mm256_cvtph_ps(h);
        // The hardware keeps NaN payload bits the software path
        // drops; canonicalise unordered lanes to sign|0x7fc00000.
        __m256 unord = _mm256_cmp_ps(x, x, _CMP_UNORD_Q);
        if (_mm256_movemask_ps(unord)) {
            __m256 canon =
                _mm256_or_ps(_mm256_and_ps(x, sign_mask), canon_nan);
            y = _mm256_blendv_ps(y, canon, unord);
        }
        _mm256_storeu_ps(out + i, y);
    }
    for (; i < n; ++i)
        out[i] = fidelity::roundToHalf(in[i]);
}

inline void
quantizeAvx2K(const float *in, std::int32_t *out, std::size_t n,
              double scale, std::int32_t qmin, std::int32_t qmax)
{
    const __m256d vscale = _mm256_set1_pd(scale);
    const __m256d lo = _mm256_set1_pd(static_cast<double>(qmin));
    const __m256d hi = _mm256_set1_pd(static_cast<double>(qmax));
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        __m128 xf = _mm_loadu_ps(in + i);
        if (_mm_movemask_ps(_mm_cmpunord_ps(xf, xf))) {
            // NaN operands take the scalar path so the (platform-
            // defined) NaN-to-int conversion stays identical.
            for (std::size_t j = i; j < i + 4; ++j)
                out[j] = quantOne(in[j], scale, qmin, qmax);
            continue;
        }
        __m256d x = _mm256_cvtps_pd(xf);
        __m256d q = _mm256_div_pd(x, vscale);
        q = _mm256_round_pd(
            q, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
        q = _mm256_max_pd(_mm256_min_pd(q, hi), lo);
        __m128i r = _mm256_cvttpd_epi32(q);
        _mm_storeu_si128(reinterpret_cast<__m128i *>(out + i), r);
    }
    for (; i < n; ++i)
        out[i] = quantOne(in[i], scale, qmin, qmax);
}

#endif // AVX2 && F16C

} // namespace
} // namespace fidelity::simd

#endif // FIDELITY_SIMD_KERNELS_IMPL_HH
