#include "simd/simd.hh"

#include <atomic>
#include <cstring>

namespace fidelity::simd
{

namespace
{

std::atomic<bool> g_enabled{true};

} // namespace

const char *
backendName()
{
#if defined(FIDELITY_NO_SIMD)
    return "scalar (FIDELITY_NO_SIMD)";
#elif defined(__AVX2__)
    return "avx2";
#elif defined(__SSE4_1__)
    return "sse4.1";
#elif defined(__SSE2__) || defined(_M_X64) || defined(_M_AMD64)
    return "sse2";
#elif defined(FIDELITY_SIMD_NEON)
    return "neon";
#else
    return "scalar";
#endif
}

bool
enabled()
{
    return g_enabled.load(std::memory_order_relaxed);
}

void
setEnabled(bool on)
{
    g_enabled.store(on, std::memory_order_relaxed);
}

namespace
{

inline bool
bitsEqual(float a, float b)
{
    std::uint32_t ua, ub;
    std::memcpy(&ua, &a, sizeof(ua));
    std::memcpy(&ub, &b, sizeof(ub));
    return ua == ub;
}

} // namespace

std::size_t
firstBitDiff(const float *a, const float *b, std::size_t n)
{
    std::size_t i = 0;
#if !defined(FIDELITY_NO_SIMD) && defined(__AVX2__)
    for (; i + 8 <= n; i += 8) {
        __m256i va = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(a + i));
        __m256i vb = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(b + i));
        __m256i eq = _mm256_cmpeq_epi32(va, vb);
        std::uint32_t mask = static_cast<std::uint32_t>(
            _mm256_movemask_ps(_mm256_castsi256_ps(eq)));
        if (mask != 0xffu)
            break;
    }
#elif !defined(FIDELITY_NO_SIMD) && \
    (defined(__SSE2__) || defined(_M_X64) || defined(_M_AMD64))
    for (; i + 4 <= n; i += 4) {
        __m128i va = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(a + i));
        __m128i vb = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(b + i));
        __m128i eq = _mm_cmpeq_epi32(va, vb);
        std::uint32_t mask = static_cast<std::uint32_t>(
            _mm_movemask_ps(_mm_castsi128_ps(eq)));
        if (mask != 0xfu)
            break;
    }
#endif
    for (; i < n; ++i)
        if (!bitsEqual(a[i], b[i]))
            return i;
    return n;
}

std::size_t
lastBitDiff(const float *a, const float *b, std::size_t n)
{
    std::size_t i = n;
#if !defined(FIDELITY_NO_SIMD) && defined(__AVX2__)
    while (i >= 8) {
        __m256i va = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(a + i - 8));
        __m256i vb = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(b + i - 8));
        __m256i eq = _mm256_cmpeq_epi32(va, vb);
        std::uint32_t mask = static_cast<std::uint32_t>(
            _mm256_movemask_ps(_mm256_castsi256_ps(eq)));
        if (mask != 0xffu)
            break;
        i -= 8;
    }
#elif !defined(FIDELITY_NO_SIMD) && \
    (defined(__SSE2__) || defined(_M_X64) || defined(_M_AMD64))
    while (i >= 4) {
        __m128i va = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(a + i - 4));
        __m128i vb = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(b + i - 4));
        __m128i eq = _mm_cmpeq_epi32(va, vb);
        std::uint32_t mask = static_cast<std::uint32_t>(
            _mm_movemask_ps(_mm_castsi128_ps(eq)));
        if (mask != 0xfu)
            break;
        i -= 4;
    }
#endif
    while (i > 0) {
        --i;
        if (!bitsEqual(a[i], b[i]))
            return i;
    }
    return n;
}

} // namespace fidelity::simd
