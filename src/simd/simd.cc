/**
 * @file
 * Runtime backend dispatch: pick the best kernel table for the CPU we
 * are actually running on, once, with env/API overrides.  This TU is
 * compiled at the baseline ISA; the per-backend tables live in their
 * own translation units with per-file flags.
 */

#include "simd/simd.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace fidelity::simd
{

// Defined in kernels_<backend>.cc; null when not compiled in.
const KernelTable *kernelTableScalar();
const KernelTable *kernelTableSse2();
const KernelTable *kernelTableAvx2();
const KernelTable *kernelTableNeon();

namespace
{

std::atomic<bool> g_enabled{true};
std::atomic<const KernelTable *> g_forced{nullptr};
// "forced-env" / "forced-api" when g_forced is set, else selection mode.
std::atomic<const char *> g_forcedMode{nullptr};

bool
cpuSupportsAvx2F16c()
{
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
    return __builtin_cpu_supports("avx2") &&
           __builtin_cpu_supports("f16c");
#else
    return false;
#endif
}

/**
 * Resolve a backend name to a runnable table on this host, or null.
 * "Runnable" = compiled into the binary AND supported by the CPU.
 */
const KernelTable *
resolve(const char *name)
{
    if (std::strcmp(name, "scalar") == 0)
        return kernelTableScalar();
    if (std::strcmp(name, "sse2") == 0)
        return kernelTableSse2(); // x86-64 baseline: no CPUID needed
    if (std::strcmp(name, "avx2") == 0) {
        const KernelTable *t = kernelTableAvx2();
        return (t && cpuSupportsAvx2F16c()) ? t : nullptr;
    }
    if (std::strcmp(name, "neon") == 0)
        return kernelTableNeon();
    return nullptr;
}

const KernelTable *
pickBest()
{
    if (const KernelTable *t = resolve("avx2"))
        return t;
    if (const KernelTable *t = kernelTableSse2())
        return t;
    if (const KernelTable *t = kernelTableNeon())
        return t;
    return kernelTableScalar();
}

struct Selection
{
    const KernelTable *t;
    const char *mode;
};

Selection
selectOnce()
{
    const char *env = std::getenv("FIDELITY_FORCE_BACKEND");
    if (env && *env && std::strcmp(env, "auto") != 0) {
        const KernelTable *t = resolve(env);
        if (!t) {
            std::fprintf(stderr,
                         "fidelity: FIDELITY_FORCE_BACKEND=%s is not "
                         "available on this host (not compiled in, or "
                         "the CPU lacks the ISA)\n",
                         env);
            std::exit(1);
        }
        return {t, "forced-env"};
    }
#if defined(FIDELITY_NO_SIMD)
    return {kernelTableScalar(), "no-simd"};
#else
    return {pickBest(), "cpuid"};
#endif
}

const Selection &
selection()
{
    static const Selection s = selectOnce();
    return s;
}

} // namespace

const KernelTable &
table()
{
    if (!g_enabled.load(std::memory_order_relaxed))
        return *kernelTableScalar();
    if (const KernelTable *f = g_forced.load(std::memory_order_relaxed))
        return *f;
    return *selection().t;
}

const char *
backendName()
{
    if (const KernelTable *f = g_forced.load(std::memory_order_relaxed))
        return f->name;
    return selection().t->name;
}

const char *
dispatchMode()
{
    if (g_forced.load(std::memory_order_relaxed))
        return g_forcedMode.load(std::memory_order_relaxed);
    return selection().mode;
}

bool
forceBackend(const char *name)
{
    if (!name || !*name || std::strcmp(name, "auto") == 0) {
        g_forced.store(nullptr, std::memory_order_relaxed);
        return true;
    }
    const KernelTable *t = resolve(name);
    if (!t)
        return false;
    g_forcedMode.store("forced-api", std::memory_order_relaxed);
    g_forced.store(t, std::memory_order_relaxed);
    return true;
}

bool
backendAvailable(const char *name)
{
    return name && resolve(name) != nullptr;
}

bool
enabled()
{
    return g_enabled.load(std::memory_order_relaxed);
}

void
setEnabled(bool on)
{
    g_enabled.store(on, std::memory_order_relaxed);
}

namespace
{

inline bool
bitsEqual(float a, float b)
{
    std::uint32_t ua, ub;
    std::memcpy(&ua, &a, sizeof(ua));
    std::memcpy(&ub, &b, sizeof(ub));
    return ua == ub;
}

} // namespace

std::size_t
firstBitDiff(const float *a, const float *b, std::size_t n)
{
    std::size_t i = 0;
#if defined(FIDELITY_SIMD_X86_BASELINE)
    for (; i + 4 <= n; i += 4) {
        __m128i va = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(a + i));
        __m128i vb = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(b + i));
        __m128i eq = _mm_cmpeq_epi32(va, vb);
        std::uint32_t mask = static_cast<std::uint32_t>(
            _mm_movemask_ps(_mm_castsi128_ps(eq)));
        if (mask != 0xfu)
            break;
    }
#endif
    for (; i < n; ++i)
        if (!bitsEqual(a[i], b[i]))
            return i;
    return n;
}

std::size_t
lastBitDiff(const float *a, const float *b, std::size_t n)
{
    std::size_t i = n;
#if defined(FIDELITY_SIMD_X86_BASELINE)
    while (i >= 4) {
        __m128i va = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(a + i - 4));
        __m128i vb = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(b + i - 4));
        __m128i eq = _mm_cmpeq_epi32(va, vb);
        std::uint32_t mask = static_cast<std::uint32_t>(
            _mm_movemask_ps(_mm_castsi128_ps(eq)));
        if (mask != 0xfu)
            break;
        i -= 4;
    }
#endif
    while (i > 0) {
        --i;
        if (!bitsEqual(a[i], b[i]))
            return i;
    }
    return n;
}

} // namespace fidelity::simd
