/**
 * @file
 * The AVX2 kernel table.  This translation unit — and only this one —
 * is compiled with `-mavx2 -mf16c` (per-file flags in
 * src/CMakeLists.txt); the rest of the binary stays at the baseline
 * ISA, and the dispatcher only hands this table out after CPUID
 * confirms avx2+f16c, so the one binary still runs everywhere.
 */

#include "simd/kernels_impl.hh"

namespace fidelity::simd
{

const KernelTable *
kernelTableAvx2()
{
#if defined(FIDELITY_KIMPL_X86) && defined(__AVX2__) && \
    defined(__F16C__)
    static const KernelTable t = {
        "avx2",
        &gemmF32T<Avx2Backend>,
        &gemmI64T<Avx2Backend>,
        &gemmNarrowAvx2K,
        &batchMacF32T<Avx2Backend, Sse2Backend>,
        &batchMacI64T<Avx2Backend>,
        &batchMacNarrowAvx2K,
        &addF32T<Avx2Backend>,
        &subF32T<Avx2Backend>,
        &mulF32T<Avx2Backend>,
        &scaleShiftF32T<Avx2Backend>,
        &reluF32T<Avx2Backend>,
        &lreluF32T<Avx2Backend>,
        &roundToHalfAvx2K,
        &quantizeAvx2K,
    };
    return &t;
#else
    return nullptr;
#endif
}

} // namespace fidelity::simd
