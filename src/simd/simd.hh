/**
 * @file
 * Runtime-dispatched SIMD kernel tables for the forward kernels.
 *
 * The hot kernels (conv / FC / matmul / elementwise) vectorize across
 * *independent output elements* — output-channel lanes for the MAC
 * layers — while each output's reduction keeps the canonical scalar
 * accumulation order.  Per lane, every operation is the exact scalar
 * operation (an unfused multiply followed by an add, never an FMA), so
 * a vector kernel is bit-identical to the scalar kernel for any lane
 * width, and identical across backends.
 *
 * Backends are no longer chosen at compile time.  Each backend lives
 * in its own translation unit (`kernels_scalar.cc`, `kernels_sse2.cc`,
 * `kernels_avx2.cc`, `kernels_neon.cc`) compiled with per-file ISA
 * flags, exposing one `KernelTable` of function pointers.  `table()`
 * picks the best table for the running CPU once (CPUID), so a single
 * x86-64-baseline binary serves AVX2, SSE2-only, and scalar hosts.
 * The choice can be overridden with the `FIDELITY_FORCE_BACKEND`
 * environment variable or `forceBackend()` (the CLI flags route
 * through the latter), and `FIDELITY_NO_SIMD` builds compile every
 * intrinsic table out, leaving only the scalar table.
 *
 * The packed-weight layouts use *fixed* lane widths shared by every
 * backend (kF32Lanes/kI64Lanes/kNarrowLanes below): a 4-lane backend
 * walks an 8-wide block in two halves, the scalar table loops — so a
 * pack built once is valid under any dispatched or forced backend,
 * and switching backends never requires repacking.
 *
 * The runtime toggle (`setEnabled(false)`) routes `table()` to the
 * scalar table inside a SIMD build; the differential tests and the
 * scalar-vs-SIMD benches use it to compare both paths in one binary.
 * Because lane grouping never changes the arithmetic of one output,
 * neither the toggle nor the dispatched backend can change results;
 * tests assert that.
 */

#ifndef FIDELITY_SIMD_SIMD_HH
#define FIDELITY_SIMD_SIMD_HH

#include <cstddef>
#include <cstdint>
#include <cstring>

#if !defined(FIDELITY_NO_SIMD)
#if defined(__SSE2__) || defined(_M_X64) || defined(_M_AMD64)
#include <immintrin.h>
#define FIDELITY_SIMD_X86_BASELINE 1
#endif
#endif

namespace fidelity::simd
{

/**
 * Fixed pack widths (see pack.hh).  These are properties of the packed
 * data layout, not of any one backend: every KernelTable consumes the
 * same layout, which is what makes runtime backend switching free.
 */
inline constexpr int kF32Lanes = 8;    //!< f32 pack block width
inline constexpr int kI64Lanes = 4;    //!< wide-int pack block width
inline constexpr int kNarrowLanes = 8; //!< narrow-int pack block width

/**
 * Minimum overflow-safe chunk length (in reduction *pairs*) for the
 * narrow integer path to be worth engaging; below this the int64
 * spills dominate and the wide path wins (see narrowChunkPairs() in
 * pack.hh and DESIGN.md §13).
 */
inline constexpr int kNarrowMinChunk = 8;

/**
 * One backend's kernel entry points.  All signatures are plain C data
 * (raw pointers + sizes) so the per-ISA translation units need no
 * repo headers beyond this one: gathers, writebacks, and layer logic
 * stay in baseline-compiled code, only the inner loops cross this
 * boundary.
 *
 * GEMM kernels *overwrite* `acc` with the full padded lane results
 * ([nblocks][L]); callers read back the real columns.  Batched MAC
 * kernels likewise overwrite `acc[0..W)`.
 */
struct KernelTable
{
    const char *name; //!< "avx2", "sse2", "neon", or "scalar"

    /**
     * acc[b*8+l] = sum_k x[k] * packed[(b*red + k)*8 + l] with the
     * canonical per-lane unfused multiply-add order (pack.hh layout,
     * width kF32Lanes).
     */
    void (*gemmF32)(const float *x, int red, int nblocks,
                    const float *packed, float *acc);

    /**
     * Wide integer twin: int64 accumulators over int32 operands,
     * pack width kI64Lanes.  acc[b*4+l] = sum_k x[k] * w[k, l].
     */
    void (*gemmI64)(const std::int32_t *x, int red, int nblocks,
                    const std::int32_t *packed, std::int64_t *acc);

    /**
     * Narrow integer kernel over the pair-interleaved int16 pack
     * (packNarrow(): [colBlock][kPair][lane8][2]).  Operands are the
     * stored-form quantised values narrowed to int16 (lossless for
     * bits <= 16); `x` must be readable for 2*redPairs elements (the
     * caller pads odd reductions — the padded weight is zero, so the
     * padded operand's value cannot matter).  Pair products accumulate
     * in int32 for at most `chunkPairs` pairs (statically proven not
     * to overflow — see narrowChunkPairs()), then spill into int64.
     * Integer math is exact, so the result equals the wide kernel's
     * bit for bit.
     */
    void (*gemmNarrow)(const std::int16_t *x, int redPairs, int nblocks,
                       const std::int16_t *packed, int chunkPairs,
                       std::int64_t *acc);

    /**
     * Lane-minor batched MAC row (fault-batched engine):
     * acc[l] = sum_k xg[k*W + l] * w[k*wstride] for l in [0, W), in
     * canonical k order with unfused per-lane multiply-adds.
     */
    void (*batchMacF32)(const float *xg, const float *w, std::size_t red,
                        std::size_t wstride, int W, float *acc);

    /** Wide-int batched twin: acc[l] += (int64)w[k*wstride] * xg[k*W+l]. */
    void (*batchMacI64)(const std::int32_t *xg, const std::int32_t *w,
                        std::size_t red, std::size_t wstride, int W,
                        std::int64_t *acc);

    /**
     * Narrow batched MAC: operands are int16 lane rows (xg must hold
     * 2*redPairs rows of W lanes; the caller zero-pads the last row
     * when the reduction is odd), weights are pairs read from the
     * narrow pack at w[p*wstride], w[p*wstride + 1].  Same chunked
     * int32 accumulation contract as gemmNarrow.
     */
    void (*batchMacNarrow)(const std::int16_t *xg, const std::int16_t *w,
                           std::size_t redPairs, std::size_t wstride,
                           int chunkPairs, int W, std::int64_t *acc);

    // Streaming elementwise maps (whole range, scalar tail inside).
    void (*addF32)(const float *a, const float *b, float *o, std::size_t n);
    void (*subF32)(const float *a, const float *b, float *o, std::size_t n);
    void (*mulF32)(const float *a, const float *b, float *o, std::size_t n);
    /** o[i] = scale * x[i] + shift (unfused). */
    void (*scaleShiftF32)(const float *x, float scale, float shift,
                          float *o, std::size_t n);
    /** o[i] = x[i] > 0 ? x[i] : 0 (NaN takes the 0 branch, like scalar). */
    void (*reluF32)(const float *x, float *o, std::size_t n);
    /** o[i] = x[i] > 0 ? x[i] : alpha * x[i]. */
    void (*lreluF32)(const float *x, float alpha, float *o, std::size_t n);

    /** out[i] = roundToHalf(in[i]); bit-identical to the scalar fn. */
    void (*roundToHalfB)(const float *in, float *out, std::size_t n);

    /** out[i] = quantize(in[i]) with the given params; bit-identical. */
    void (*quantizeB)(const float *in, std::int32_t *out, std::size_t n,
                      double scale, std::int32_t qmin, std::int32_t qmax);
};

/**
 * The kernel table every hot path should use.  Honours (in order) the
 * runtime kill switch (`setEnabled(false)` → scalar table), an active
 * `forceBackend()` / `FIDELITY_FORCE_BACKEND` override, then the
 * CPUID-selected best table.  Hoist the reference out of loops —
 * the selection itself is one relaxed atomic load.
 */
const KernelTable &table();

/**
 * Runtime name of the dispatched backend ("avx2", "sse2", "neon",
 * "scalar") — the table `table()` would return with the kill switch
 * on.  Reported in the run manifest and the bench rows.
 */
const char *backendName();

/** How the backend was chosen: "cpuid", "forced-env", "forced-api",
 *  or "no-simd" (FIDELITY_NO_SIMD build). */
const char *dispatchMode();

/**
 * Force a specific backend by name ("scalar", "sse2", "avx2", "neon");
 * nullptr, "" or "auto" restores CPUID selection.  Returns false (and
 * changes nothing) when the named backend is unavailable — not
 * compiled in, or the CPU lacks the ISA.  Packed weights are
 * backend-independent, so switching never invalidates layer caches.
 */
bool forceBackend(const char *name);

/** Whether the named backend could be forced on this host. */
bool backendAvailable(const char *name);

/**
 * Runtime kill switch: when false, every kernel runs the scalar table
 * (bit-identical by construction).  Global, not thread-local — flip it
 * only around single-threaded comparisons.
 */
bool enabled();
void setEnabled(bool on);

/**
 * First index in [0, n) where a and b differ bit-for-bit, or n.
 * Exact integer comparison (distinguishes -0.0/+0.0 and NaN payloads),
 * used by the incremental engine's cone shrinking.  Compiled at the
 * baseline ISA (SSE2 on x86-64) — comparisons are exact under any
 * vector width, so these do not go through the dispatch table.
 */
std::size_t firstBitDiff(const float *a, const float *b, std::size_t n);

/** Last differing index in [0, n), or n when the ranges are equal. */
std::size_t lastBitDiff(const float *a, const float *b, std::size_t n);

/**
 * Bitmask of the lanes in p[0..lanes) whose 32-bit pattern differs
 * from x's pattern (bit l set when p[l] != x bitwise).  Exact integer
 * comparison like firstBitDiff; the batched engine's per-injection
 * diff scan compares each SoA lane column against the golden value
 * with one movemask where the baseline ISA has it.
 */
inline std::uint32_t
laneNeMask(const float *p, float x, int lanes)
{
    std::uint32_t xb;
    std::memcpy(&xb, &x, sizeof(xb));
#if defined(FIDELITY_SIMD_X86_BASELINE)
    if (lanes == 8) {
        __m128i xv = _mm_set1_epi32(static_cast<std::int32_t>(xb));
        __m128i lo =
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(p));
        __m128i hi =
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(p + 4));
        std::uint32_t mlo = static_cast<std::uint32_t>(_mm_movemask_ps(
            _mm_castsi128_ps(_mm_cmpeq_epi32(lo, xv))));
        std::uint32_t mhi = static_cast<std::uint32_t>(_mm_movemask_ps(
            _mm_castsi128_ps(_mm_cmpeq_epi32(hi, xv))));
        return ~(mlo | (mhi << 4)) & 0xffu;
    }
    if (lanes == 4) {
        __m128i pv =
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(p));
        __m128i eq = _mm_cmpeq_epi32(
            pv, _mm_set1_epi32(static_cast<std::int32_t>(xb)));
        return ~static_cast<std::uint32_t>(
                   _mm_movemask_ps(_mm_castsi128_ps(eq))) &
               0xfu;
    }
#endif
    std::uint32_t m = 0;
    for (int l = 0; l < lanes; ++l) {
        std::uint32_t pb;
        std::memcpy(&pb, p + l, sizeof(pb));
        if (pb != xb)
            m |= 1u << l;
    }
    return m;
}

} // namespace fidelity::simd

#endif // FIDELITY_SIMD_SIMD_HH
