/**
 * @file
 * Portable SIMD backend for the forward kernels.
 *
 * The hot kernels (conv / FC / matmul / elementwise) vectorize across
 * *independent output elements* — output-channel lanes for the MAC
 * layers — while each output's reduction keeps the canonical scalar
 * accumulation order.  Per lane, every operation is the exact scalar
 * operation (an unfused multiply followed by an add, never an FMA), so
 * a vector kernel is bit-identical to the scalar kernel for any lane
 * width, and identical across backends.
 *
 * Backends are selected at compile time from predefined macros:
 * AVX2 > SSE2 > NEON > scalar, with `FIDELITY_NO_SIMD` as an escape
 * hatch that forces the scalar backend everywhere.  A runtime toggle
 * (`setEnabled`) additionally routes the kernels through the
 * fixed-width scalar backend inside a SIMD build; the differential
 * tests and the scalar-vs-SIMD benches use it to compare both paths in
 * one binary.  Because lane width only affects how outputs are grouped
 * — never the arithmetic of one output — the toggle cannot change
 * results; tests assert that.
 *
 * The `Scalar` backend mirrors the active backend's lane counts so
 * both consume the same lane-blocked packed-weight layout (see
 * pack.hh).
 */

#ifndef FIDELITY_SIMD_SIMD_HH
#define FIDELITY_SIMD_SIMD_HH

#include <cstddef>
#include <cstdint>
#include <cstring>

#if !defined(FIDELITY_NO_SIMD)
#if defined(__AVX2__) || defined(__SSE2__) || defined(__SSE4_1__)
#include <immintrin.h>
#define FIDELITY_SIMD_X86 1
#elif defined(__ARM_NEON) || defined(__ARM_NEON__)
#include <arm_neon.h>
#define FIDELITY_SIMD_NEON 1
#endif
#endif

namespace fidelity::simd
{

/**
 * Fixed-width scalar backend: plain arrays and per-lane loops.  The
 * reference semantics every vector backend must match bit-for-bit.
 */
template <int LF, int LI>
struct ScalarBackendT
{
    static constexpr int kF32Lanes = LF;
    static constexpr int kI64Lanes = LI;

    struct F32
    {
        float v[LF];
    };

    static F32
    f32zero()
    {
        F32 r;
        for (int i = 0; i < LF; ++i)
            r.v[i] = 0.0f;
        return r;
    }

    static F32
    f32load(const float *p)
    {
        F32 r;
        for (int i = 0; i < LF; ++i)
            r.v[i] = p[i];
        return r;
    }

    static F32
    f32broadcast(float x)
    {
        F32 r;
        for (int i = 0; i < LF; ++i)
            r.v[i] = x;
        return r;
    }

    /** acc + a*b per lane; multiply rounds before the add (no FMA). */
    static F32
    f32mulAcc(F32 acc, F32 a, F32 b)
    {
        F32 r;
        for (int i = 0; i < LF; ++i) {
            float prod = a.v[i] * b.v[i];
            r.v[i] = acc.v[i] + prod;
        }
        return r;
    }

    static F32
    f32add(F32 a, F32 b)
    {
        F32 r;
        for (int i = 0; i < LF; ++i)
            r.v[i] = a.v[i] + b.v[i];
        return r;
    }

    static F32
    f32sub(F32 a, F32 b)
    {
        F32 r;
        for (int i = 0; i < LF; ++i)
            r.v[i] = a.v[i] - b.v[i];
        return r;
    }

    static F32
    f32mul(F32 a, F32 b)
    {
        F32 r;
        for (int i = 0; i < LF; ++i)
            r.v[i] = a.v[i] * b.v[i];
        return r;
    }

    /** Per lane: x > 0 ? a : b (NaN lanes select b, like the scalar). */
    static F32
    f32selectGtZero(F32 x, F32 a, F32 b)
    {
        F32 r;
        for (int i = 0; i < LF; ++i)
            r.v[i] = x.v[i] > 0.0f ? a.v[i] : b.v[i];
        return r;
    }

    static void
    f32store(float *p, F32 v)
    {
        for (int i = 0; i < LF; ++i)
            p[i] = v.v[i];
    }

    struct I64
    {
        std::int64_t v[LI];
    };

    static I64
    i64zero()
    {
        I64 r;
        for (int i = 0; i < LI; ++i)
            r.v[i] = 0;
        return r;
    }

    /** acc[l] += (int64)x * w[l] over kI64Lanes int32 weights. */
    static I64
    i64mulAcc(I64 acc, std::int32_t x, const std::int32_t *w)
    {
        I64 r;
        for (int i = 0; i < LI; ++i)
            r.v[i] = acc.v[i] +
                     static_cast<std::int64_t>(x) *
                         static_cast<std::int64_t>(w[i]);
        return r;
    }

    static void
    i64store(std::int64_t *p, I64 v)
    {
        for (int i = 0; i < LI; ++i)
            p[i] = v.v[i];
    }
};

#if !defined(FIDELITY_NO_SIMD) && defined(__AVX2__)

/** AVX2: 8 float lanes, 4 int64 MAC lanes. */
struct Avx2Backend
{
    static constexpr int kF32Lanes = 8;
    static constexpr int kI64Lanes = 4;

    using F32 = __m256;

    static F32 f32zero() { return _mm256_setzero_ps(); }
    static F32 f32load(const float *p) { return _mm256_loadu_ps(p); }
    static F32 f32broadcast(float x) { return _mm256_set1_ps(x); }

    static F32
    f32mulAcc(F32 acc, F32 a, F32 b)
    {
        // Deliberately mul-then-add: an FMA's single rounding would
        // break bit-identity with the scalar kernels.
        return _mm256_add_ps(acc, _mm256_mul_ps(a, b));
    }

    static F32 f32add(F32 a, F32 b) { return _mm256_add_ps(a, b); }
    static F32 f32sub(F32 a, F32 b) { return _mm256_sub_ps(a, b); }
    static F32 f32mul(F32 a, F32 b) { return _mm256_mul_ps(a, b); }

    static F32
    f32selectGtZero(F32 x, F32 a, F32 b)
    {
        // Ordered GT: NaN compares false and selects b, matching
        // `x > 0 ? a : b` scalar semantics.
        __m256 m = _mm256_cmp_ps(x, _mm256_setzero_ps(), _CMP_GT_OQ);
        return _mm256_blendv_ps(b, a, m);
    }

    static void f32store(float *p, F32 v) { _mm256_storeu_ps(p, v); }

    using I64 = __m256i;

    static I64 i64zero() { return _mm256_setzero_si256(); }

    static I64
    i64mulAcc(I64 acc, std::int32_t x, const std::int32_t *w)
    {
        __m256i wv = _mm256_cvtepi32_epi64(
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(w)));
        // mul_epi32 reads the low signed 32 bits of each 64-bit lane;
        // zero-extending x keeps exactly those bits.
        __m256i xv = _mm256_set1_epi64x(
            static_cast<std::int64_t>(static_cast<std::uint32_t>(x)));
        return _mm256_add_epi64(acc, _mm256_mul_epi32(xv, wv));
    }

    static void
    i64store(std::int64_t *p, I64 v)
    {
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(p), v);
    }
};

using Active = Avx2Backend;

#elif !defined(FIDELITY_NO_SIMD) && \
    (defined(__SSE2__) || defined(_M_X64) || defined(_M_AMD64))

/**
 * SSE: 4 float lanes.  The signed 32x32->64 multiply needs SSE4.1
 * (`_mm_mul_epi32`); under plain SSE2 the integer MAC stays scalar.
 */
struct Sse2Backend
{
    static constexpr int kF32Lanes = 4;
#if defined(__SSE4_1__)
    static constexpr int kI64Lanes = 2;
#else
    static constexpr int kI64Lanes = 4;
#endif

    using F32 = __m128;

    static F32 f32zero() { return _mm_setzero_ps(); }
    static F32 f32load(const float *p) { return _mm_loadu_ps(p); }
    static F32 f32broadcast(float x) { return _mm_set1_ps(x); }

    static F32
    f32mulAcc(F32 acc, F32 a, F32 b)
    {
        return _mm_add_ps(acc, _mm_mul_ps(a, b));
    }

    static F32 f32add(F32 a, F32 b) { return _mm_add_ps(a, b); }
    static F32 f32sub(F32 a, F32 b) { return _mm_sub_ps(a, b); }
    static F32 f32mul(F32 a, F32 b) { return _mm_mul_ps(a, b); }

    static F32
    f32selectGtZero(F32 x, F32 a, F32 b)
    {
        __m128 m = _mm_cmpgt_ps(x, _mm_setzero_ps());
        return _mm_or_ps(_mm_and_ps(m, a), _mm_andnot_ps(m, b));
    }

    static void f32store(float *p, F32 v) { _mm_storeu_ps(p, v); }

#if defined(__SSE4_1__)
    using I64 = __m128i;

    static I64 i64zero() { return _mm_setzero_si128(); }

    static I64
    i64mulAcc(I64 acc, std::int32_t x, const std::int32_t *w)
    {
        __m128i wv = _mm_cvtepi32_epi64(
            _mm_loadl_epi64(reinterpret_cast<const __m128i *>(w)));
        __m128i xv = _mm_set1_epi64x(
            static_cast<std::int64_t>(static_cast<std::uint32_t>(x)));
        return _mm_add_epi64(acc, _mm_mul_epi32(xv, wv));
    }

    static void
    i64store(std::int64_t *p, I64 v)
    {
        _mm_storeu_si128(reinterpret_cast<__m128i *>(p), v);
    }
#else
    using ScalarI = ScalarBackendT<kF32Lanes, kI64Lanes>;
    using I64 = ScalarI::I64;

    static I64 i64zero() { return ScalarI::i64zero(); }

    static I64
    i64mulAcc(I64 acc, std::int32_t x, const std::int32_t *w)
    {
        return ScalarI::i64mulAcc(acc, x, w);
    }

    static void i64store(std::int64_t *p, I64 v)
    {
        ScalarI::i64store(p, v);
    }
#endif
};

using Active = Sse2Backend;

#elif !defined(FIDELITY_NO_SIMD) && defined(FIDELITY_SIMD_NEON)

/** NEON: 4 float lanes, 2 int64 MAC lanes via vmlal_s32. */
struct NeonBackend
{
    static constexpr int kF32Lanes = 4;
    static constexpr int kI64Lanes = 2;

    using F32 = float32x4_t;

    static F32 f32zero() { return vdupq_n_f32(0.0f); }
    static F32 f32load(const float *p) { return vld1q_f32(p); }
    static F32 f32broadcast(float x) { return vdupq_n_f32(x); }

    static F32
    f32mulAcc(F32 acc, F32 a, F32 b)
    {
        // vmlaq may contract to a fused multiply-add; keep the rounding
        // of the scalar kernel with an explicit mul + add.
        return vaddq_f32(acc, vmulq_f32(a, b));
    }

    static F32 f32add(F32 a, F32 b) { return vaddq_f32(a, b); }
    static F32 f32sub(F32 a, F32 b) { return vsubq_f32(a, b); }
    static F32 f32mul(F32 a, F32 b) { return vmulq_f32(a, b); }

    static F32
    f32selectGtZero(F32 x, F32 a, F32 b)
    {
        uint32x4_t m = vcgtq_f32(x, vdupq_n_f32(0.0f));
        return vbslq_f32(m, a, b);
    }

    static void f32store(float *p, F32 v) { vst1q_f32(p, v); }

    using I64 = int64x2_t;

    static I64 i64zero() { return vdupq_n_s64(0); }

    static I64
    i64mulAcc(I64 acc, std::int32_t x, const std::int32_t *w)
    {
        return vmlal_s32(acc, vdup_n_s32(x), vld1_s32(w));
    }

    static void i64store(std::int64_t *p, I64 v) { vst1q_s64(p, v); }
};

using Active = NeonBackend;

#else

using Active = ScalarBackendT<4, 4>;

#endif

/** Scalar twin of the active backend (same lane counts, same layout). */
using Scalar = ScalarBackendT<Active::kF32Lanes, Active::kI64Lanes>;

/** Lane-blocked pack widths shared by every kernel and pack buffer. */
inline constexpr int kF32Lanes = Active::kF32Lanes;
inline constexpr int kI64Lanes = Active::kI64Lanes;

/** Compile-time name of the active backend ("avx2", "sse2", ...). */
const char *backendName();

/**
 * Runtime kill switch: when false, the kernels run their scalar-
 * backend instantiation (bit-identical by construction).  Global, not
 * thread-local — flip it only around single-threaded comparisons.
 */
bool enabled();
void setEnabled(bool on);

/**
 * Dispatch a generic callable on the active backend, honouring the
 * runtime toggle: `dispatch([&](auto b) { using B = decltype(b); ... })`.
 */
template <class Fn>
decltype(auto)
dispatch(Fn &&fn)
{
    if (enabled())
        return fn(Active{});
    return fn(Scalar{});
}

/**
 * First index in [0, n) where a and b differ bit-for-bit, or n.
 * Exact integer comparison (distinguishes -0.0/+0.0 and NaN payloads),
 * used by the incremental engine's cone shrinking.
 */
std::size_t firstBitDiff(const float *a, const float *b, std::size_t n);

/** Last differing index in [0, n), or n when the ranges are equal. */
std::size_t lastBitDiff(const float *a, const float *b, std::size_t n);

/**
 * Bitmask of the lanes in p[0..lanes) whose 32-bit pattern differs
 * from x's pattern (bit l set when p[l] != x bitwise).  Exact integer
 * comparison like firstBitDiff; the batched engine's per-injection
 * diff scan compares each SoA lane column against the golden value
 * with one movemask where the hardware has it.
 */
inline std::uint32_t
laneNeMask(const float *p, float x, int lanes)
{
    std::uint32_t xb;
    std::memcpy(&xb, &x, sizeof(xb));
#if !defined(FIDELITY_NO_SIMD) && defined(__AVX2__)
    if (lanes == 8) {
        __m256i pv = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(p));
        __m256i eq = _mm256_cmpeq_epi32(
            pv, _mm256_set1_epi32(static_cast<std::int32_t>(xb)));
        return ~static_cast<std::uint32_t>(
                   _mm256_movemask_ps(_mm256_castsi256_ps(eq))) &
               0xffu;
    }
#endif
#if !defined(FIDELITY_NO_SIMD) && \
    (defined(__AVX2__) || defined(__SSE2__) || defined(_M_X64) || \
     defined(_M_AMD64))
    if (lanes == 4) {
        __m128i pv =
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(p));
        __m128i eq = _mm_cmpeq_epi32(
            pv, _mm_set1_epi32(static_cast<std::int32_t>(xb)));
        return ~static_cast<std::uint32_t>(
                   _mm_movemask_ps(_mm_castsi128_ps(eq))) &
               0xfu;
    }
#endif
    std::uint32_t m = 0;
    for (int l = 0; l < lanes; ++l) {
        std::uint32_t pb;
        std::memcpy(&pb, p + l, sizeof(pb));
        if (pb != xb)
            m |= 1u << l;
    }
    return m;
}

} // namespace fidelity::simd

#endif // FIDELITY_SIMD_SIMD_HH
