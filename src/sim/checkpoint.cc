#include "sim/checkpoint.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "sim/logging.hh"

#if !defined(_WIN32)
#include <fcntl.h>
#include <unistd.h>
#endif

namespace fidelity
{

void
HashMixer::mix(std::uint64_t v)
{
    h_ ^= v;
    h_ *= 1099511628211ULL;
}

void
HashMixer::mix(double v)
{
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    mix(bits);
}

void
HashMixer::mix(const std::string &s)
{
    mix(static_cast<std::uint64_t>(s.size()));
    for (char c : s)
        mix(static_cast<std::uint64_t>(static_cast<unsigned char>(c)));
}

namespace
{

// Eight magic bytes: format name + one version byte.  Snapshots are
// host-endian — a checkpoint resumes on the machine (or at least the
// architecture) that wrote it, which is the crash-recovery use case.
constexpr char snapshotMagic[8] = {'F', 'I', 'D', 'C',
                                   'K', 'P', 'T', '\x01'};

// On-disk sizes the reader validates declared counts against.
constexpr std::uint64_t headerBytes = sizeof(snapshotMagic) + 2 * 8;
constexpr std::uint64_t shardFixedBytes = 5 * 8; //!< sans samples
constexpr std::uint64_t sampleBytes = 2 * 8;

void
putU64(std::string &out, std::uint64_t v)
{
    char buf[sizeof(v)];
    std::memcpy(buf, &v, sizeof(v));
    out.append(buf, sizeof(buf));
}

std::uint64_t
getU64(std::ifstream &in, const std::string &path)
{
    std::uint64_t v = 0;
    in.read(reinterpret_cast<char *>(&v), sizeof(v));
    fatal_if(!in, "snapshot ", path, " is truncated");
    return v;
}

#if !defined(_WIN32)
/** fsync an fd; filesystems without sync semantics report EINVAL /
 *  ENOTSUP (notably for directories), which is not a failure. */
void
syncFd(int fd, const std::string &what)
{
    if (::fsync(fd) != 0 && errno != EINVAL && errno != ENOTSUP &&
        errno != EROFS)
        fatal("cannot fsync ", what, ": ", std::strerror(errno));
}
#endif

} // namespace

std::uint64_t
writeSnapshot(const std::string &path, const CampaignSnapshot &snap)
{
    fatal_if(path.empty(), "snapshot path must not be empty");

    // Serialize into memory first: one write syscall, and the byte
    // count is known for the durability bookkeeping.
    std::string bytes;
    bytes.reserve(headerBytes + snap.shards.size() * shardFixedBytes);
    bytes.append(snapshotMagic, sizeof(snapshotMagic));
    putU64(bytes, snap.configHash);
    putU64(bytes, snap.shards.size());
    for (const ShardRecord &r : snap.shards) {
        putU64(bytes, r.ordinal);
        putU64(bytes, r.cell);
        putU64(bytes, r.maskedCount);
        putU64(bytes, r.trials);
        putU64(bytes, r.samples.size());
        for (const auto &[delta, failed] : r.samples) {
            std::uint64_t dbits;
            static_assert(sizeof(dbits) == sizeof(delta));
            std::memcpy(&dbits, &delta, sizeof(dbits));
            putU64(bytes, dbits);
            putU64(bytes, failed ? 1 : 0);
        }
    }

    const std::string tmp = path + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    fatal_if(!f, "cannot open snapshot temp file ", tmp, ": ",
             std::strerror(errno));
    const std::size_t wrote = std::fwrite(bytes.data(), 1, bytes.size(), f);
    if (wrote != bytes.size() || std::fflush(f) != 0) {
        std::fclose(f);
        fatal("short write to snapshot temp file ", tmp);
    }
#if !defined(_WIN32)
    // The data must be on disk *before* the rename publishes it: a
    // rename can survive a crash that the file contents did not, and a
    // later resumeFrom would then trust an empty or torn snapshot.
    syncFd(fileno(f), tmp);
#endif
    fatal_if(std::fclose(f) != 0, "cannot close snapshot temp file ", tmp);

    // The atomic publish: readers see the old file or the new file.
    fatal_if(std::rename(tmp.c_str(), path.c_str()) != 0,
             "cannot rename ", tmp, " over ", path, ": ",
             std::strerror(errno));

#if !defined(_WIN32)
    // And the publish itself must be durable: sync the directory so
    // the rename cannot be lost (leaving a stale or missing snapshot)
    // after this function reported success.
    std::size_t slash = path.find_last_of('/');
    const std::string dir =
        slash == std::string::npos ? "." : path.substr(0, slash + 1);
    int dfd = ::open(dir.c_str(), O_RDONLY);
    fatal_if(dfd < 0, "cannot open snapshot directory ", dir,
             " to sync it: ", std::strerror(errno));
    syncFd(dfd, dir);
    ::close(dfd);
#endif
    return static_cast<std::uint64_t>(bytes.size());
}

CampaignSnapshot
readSnapshot(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    fatal_if(!in, "cannot open snapshot ", path);

    // The file size bounds every declared count below: a corrupt or
    // truncated snapshot must exit through fatal() with the path
    // named, never through std::bad_alloc on a multi-GB reserve().
    in.seekg(0, std::ios::end);
    const auto end_pos = in.tellg();
    fatal_if(end_pos < 0, "cannot size snapshot ", path);
    const std::uint64_t file_size = static_cast<std::uint64_t>(end_pos);
    in.seekg(0, std::ios::beg);
    fatal_if(file_size < headerBytes, "file ", path,
             " is not a fidelity campaign snapshot (too short)");

    char magic[sizeof(snapshotMagic)] = {};
    in.read(magic, sizeof(magic));
    fatal_if(!in ||
                 std::memcmp(magic, snapshotMagic, sizeof(magic)) != 0,
             "file ", path, " is not a fidelity campaign snapshot");

    CampaignSnapshot snap;
    snap.configHash = getU64(in, path);
    std::uint64_t count = getU64(in, path);
    fatal_if(count > (file_size - headerBytes) / shardFixedBytes,
             "snapshot ", path, " declares ", count,
             " shards but holds only ", file_size, " bytes");
    snap.shards.reserve(count);
    std::uint64_t prev_ordinal = 0;
    for (std::uint64_t i = 0; i < count; ++i) {
        ShardRecord r;
        r.ordinal = getU64(in, path);
        fatal_if(i > 0 && r.ordinal <= prev_ordinal, "snapshot ", path,
                 " has out-of-order shard ordinals");
        prev_ordinal = r.ordinal;
        r.cell = getU64(in, path);
        r.maskedCount = getU64(in, path);
        r.trials = getU64(in, path);
        fatal_if(r.maskedCount > r.trials, "snapshot ", path,
                 " has a shard with maskedCount > trials");
        std::uint64_t nsamples = getU64(in, path);
        fatal_if(nsamples > r.trials, "snapshot ", path,
                 " has a shard with more samples than trials");
        const auto here = in.tellg();
        fatal_if(here < 0, "snapshot ", path, " is truncated");
        const std::uint64_t remaining =
            file_size - static_cast<std::uint64_t>(here);
        fatal_if(nsamples > remaining / sampleBytes, "snapshot ", path,
                 " declares ", nsamples,
                 " samples in a shard with only ", remaining,
                 " bytes left");
        r.samples.reserve(nsamples);
        for (std::uint64_t s = 0; s < nsamples; ++s) {
            std::uint64_t bits = getU64(in, path);
            double delta;
            std::memcpy(&delta, &bits, sizeof(delta));
            bool failed = getU64(in, path) != 0;
            r.samples.emplace_back(delta, failed);
        }
        snap.shards.push_back(std::move(r));
    }
    return snap;
}

bool
snapshotExists(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return static_cast<bool>(in);
}

} // namespace fidelity
