#include "sim/checkpoint.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "sim/logging.hh"

#if !defined(_WIN32)
#include <fcntl.h>
#include <unistd.h>
#endif

namespace fidelity
{

void
HashMixer::mix(std::uint64_t v)
{
    h_ ^= v;
    h_ *= 1099511628211ULL;
}

void
HashMixer::mix(double v)
{
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    mix(bits);
}

void
HashMixer::mix(const std::string &s)
{
    mix(static_cast<std::uint64_t>(s.size()));
    for (char c : s)
        mix(static_cast<std::uint64_t>(static_cast<unsigned char>(c)));
}

namespace
{

// Eight magic bytes: format name + one version byte.  Snapshots are
// host-endian — a checkpoint resumes on the machine (or at least the
// architecture) that wrote it, which covers both the crash-recovery
// use case and the one-box/one-arch worker fan-out of sim/service.
constexpr char snapshotMagic[8] = {'F', 'I', 'D', 'C',
                                   'K', 'P', 'T', '\x01'};

// On-disk sizes the reader validates declared counts against.
constexpr std::uint64_t headerBytes = sizeof(snapshotMagic) + 2 * 8;
constexpr std::uint64_t shardFixedBytes = 5 * 8; //!< sans samples
constexpr std::uint64_t sampleBytes = 2 * 8;

void
putU64(std::string &out, std::uint64_t v)
{
    char buf[sizeof(v)];
    std::memcpy(buf, &v, sizeof(v));
    out.append(buf, sizeof(buf));
}

/** Bounded cursor over an in-memory snapshot image: every read is
 *  checked against the remaining byte count, so a truncated image
 *  reports instead of reading past the end. */
struct ByteCursor
{
    const char *data;
    std::size_t size;
    std::size_t pos = 0;

    bool
    u64(std::uint64_t &v)
    {
        if (size - pos < sizeof(v))
            return false;
        std::memcpy(&v, data + pos, sizeof(v));
        pos += sizeof(v);
        return true;
    }

    std::uint64_t remaining() const { return size - pos; }
};

/** Render the failure diagnostic for `what` (path or peer). */
template <typename... Args>
std::string
describe(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace

std::string
encodeSnapshot(const CampaignSnapshot &snap)
{
    std::string bytes;
    bytes.reserve(headerBytes + snap.shards.size() * shardFixedBytes);
    bytes.append(snapshotMagic, sizeof(snapshotMagic));
    putU64(bytes, snap.configHash);
    putU64(bytes, snap.shards.size());
    for (const ShardRecord &r : snap.shards) {
        putU64(bytes, r.ordinal);
        putU64(bytes, r.cell);
        putU64(bytes, r.maskedCount);
        putU64(bytes, r.trials);
        putU64(bytes, r.samples.size());
        for (const auto &[delta, failed] : r.samples) {
            std::uint64_t dbits;
            static_assert(sizeof(dbits) == sizeof(delta));
            std::memcpy(&dbits, &delta, sizeof(dbits));
            putU64(bytes, dbits);
            putU64(bytes, failed ? 1 : 0);
        }
    }
    return bytes;
}

bool
tryDecodeSnapshot(const char *data, std::size_t size,
                  const std::string &what, CampaignSnapshot &snap,
                  std::string &err)
{
    // The image size bounds every declared count below: a corrupt or
    // truncated snapshot must produce a diagnostic naming `what`,
    // never a std::bad_alloc on a multi-GB reserve().
    if (size < headerBytes) {
        err = describe(what, " is not a fidelity campaign snapshot "
                             "(too short)");
        return false;
    }
    if (std::memcmp(data, snapshotMagic, sizeof(snapshotMagic)) != 0) {
        err = describe(what, " is not a fidelity campaign snapshot");
        return false;
    }

    ByteCursor in{data, size, sizeof(snapshotMagic)};
    snap = CampaignSnapshot{};
    std::uint64_t count = 0;
    if (!in.u64(snap.configHash) || !in.u64(count)) {
        err = describe(what, " is truncated");
        return false;
    }
    if (count > (size - headerBytes) / shardFixedBytes) {
        err = describe(what, " declares ", count,
                       " shards but holds only ", size, " bytes");
        return false;
    }
    snap.shards.reserve(count);
    std::uint64_t prev_ordinal = 0;
    for (std::uint64_t i = 0; i < count; ++i) {
        ShardRecord r;
        std::uint64_t nsamples = 0;
        if (!in.u64(r.ordinal) || !in.u64(r.cell) ||
            !in.u64(r.maskedCount) || !in.u64(r.trials) ||
            !in.u64(nsamples)) {
            err = describe(what, " is truncated");
            return false;
        }
        if (i > 0 && r.ordinal <= prev_ordinal) {
            err = describe(what, " has out-of-order shard ordinals");
            return false;
        }
        prev_ordinal = r.ordinal;
        if (r.maskedCount > r.trials) {
            err = describe(what,
                           " has a shard with maskedCount > trials");
            return false;
        }
        if (nsamples > r.trials) {
            err = describe(what,
                           " has a shard with more samples than trials");
            return false;
        }
        if (nsamples > in.remaining() / sampleBytes) {
            err = describe(what, " declares ", nsamples,
                           " samples in a shard with only ",
                           in.remaining(), " bytes left");
            return false;
        }
        r.samples.reserve(nsamples);
        for (std::uint64_t s = 0; s < nsamples; ++s) {
            std::uint64_t bits = 0, failed = 0;
            if (!in.u64(bits) || !in.u64(failed)) {
                err = describe(what, " is truncated");
                return false;
            }
            double delta;
            std::memcpy(&delta, &bits, sizeof(delta));
            r.samples.emplace_back(delta, failed != 0);
        }
        snap.shards.push_back(std::move(r));
    }
    return true;
}

CampaignSnapshot
decodeSnapshot(std::string_view bytes, const std::string &what)
{
    CampaignSnapshot snap;
    std::string err;
    if (!tryDecodeSnapshot(bytes.data(), bytes.size(), what, snap, err))
        fatal(err);
    return snap;
}

std::uint64_t
writeSnapshot(const std::string &path, const CampaignSnapshot &snap)
{
    fatal_if(path.empty(), "snapshot path must not be empty");

    // Serialize into memory first: one write syscall, and the byte
    // count is known for the durability bookkeeping.
    const std::string bytes = encodeSnapshot(snap);

    const std::string tmp = path + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    fatal_if(!f, "cannot open snapshot temp file ", tmp, ": ",
             std::strerror(errno));
    const std::size_t wrote = std::fwrite(bytes.data(), 1, bytes.size(), f);
    if (wrote != bytes.size() || std::fflush(f) != 0) {
        std::fclose(f);
        fatal("short write to snapshot temp file ", tmp);
    }
#if !defined(_WIN32)
    // The data must be on disk *before* the rename publishes it: a
    // rename can survive a crash that the file contents did not, and a
    // later resumeFrom would then trust an empty or torn snapshot.
    // Filesystems without sync semantics report EINVAL / ENOTSUP /
    // EROFS, which is not a failure.
    if (::fsync(fileno(f)) != 0 && errno != EINVAL && errno != ENOTSUP &&
        errno != EROFS)
        fatal("cannot fsync ", tmp, ": ", std::strerror(errno));
#endif
    fatal_if(std::fclose(f) != 0, "cannot close snapshot temp file ", tmp);

    // The atomic publish: readers see the old file or the new file.
    fatal_if(std::rename(tmp.c_str(), path.c_str()) != 0,
             "cannot rename ", tmp, " over ", path, ": ",
             std::strerror(errno));

#if !defined(_WIN32)
    // And the publish itself must be durable: sync the directory so
    // the rename cannot be lost (leaving a stale or missing snapshot)
    // after this function reported success.
    std::size_t slash = path.find_last_of('/');
    const std::string dir =
        slash == std::string::npos ? "." : path.substr(0, slash + 1);
    int dfd = ::open(dir.c_str(), O_RDONLY);
    fatal_if(dfd < 0, "cannot open snapshot directory ", dir,
             " to sync it: ", std::strerror(errno));
    if (::fsync(dfd) != 0 && errno != EINVAL && errno != ENOTSUP &&
        errno != EROFS) {
        ::close(dfd);
        fatal("cannot fsync ", dir, ": ", std::strerror(errno));
    }
    ::close(dfd);
#endif
    return static_cast<std::uint64_t>(bytes.size());
}

CampaignSnapshot
readSnapshot(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    fatal_if(!in, "cannot open snapshot ", path);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    fatal_if(!in, "cannot read snapshot ", path);
    // "snapshot <path> ..." keeps the historical diagnostic shape now
    // that the decoder is shared with the wire-journal path.
    return decodeSnapshot(bytes, "snapshot " + path);
}

bool
snapshotExists(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return static_cast<bool>(in);
}

} // namespace fidelity
