#include "sim/checkpoint.hh"

#include <cstdio>
#include <cstring>
#include <fstream>

#include "sim/logging.hh"

namespace fidelity
{

void
HashMixer::mix(std::uint64_t v)
{
    h_ ^= v;
    h_ *= 1099511628211ULL;
}

void
HashMixer::mix(double v)
{
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    mix(bits);
}

void
HashMixer::mix(const std::string &s)
{
    mix(static_cast<std::uint64_t>(s.size()));
    for (char c : s)
        mix(static_cast<std::uint64_t>(static_cast<unsigned char>(c)));
}

namespace
{

// Eight magic bytes: format name + one version byte.  Snapshots are
// host-endian — a checkpoint resumes on the machine (or at least the
// architecture) that wrote it, which is the crash-recovery use case.
constexpr char snapshotMagic[8] = {'F', 'I', 'D', 'C',
                                   'K', 'P', 'T', '\x01'};

void
putU64(std::ofstream &out, std::uint64_t v)
{
    out.write(reinterpret_cast<const char *>(&v), sizeof(v));
}

std::uint64_t
getU64(std::ifstream &in, const std::string &path)
{
    std::uint64_t v = 0;
    in.read(reinterpret_cast<char *>(&v), sizeof(v));
    fatal_if(!in, "snapshot ", path, " is truncated");
    return v;
}

} // namespace

void
writeSnapshot(const std::string &path, const CampaignSnapshot &snap)
{
    fatal_if(path.empty(), "snapshot path must not be empty");
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        fatal_if(!out, "cannot open snapshot temp file ", tmp);
        out.write(snapshotMagic, sizeof(snapshotMagic));
        putU64(out, snap.configHash);
        putU64(out, snap.shards.size());
        for (const ShardRecord &r : snap.shards) {
            putU64(out, r.ordinal);
            putU64(out, r.cell);
            putU64(out, r.maskedCount);
            putU64(out, r.trials);
            putU64(out, r.samples.size());
            for (const auto &[delta, failed] : r.samples) {
                std::uint64_t bits;
                static_assert(sizeof(bits) == sizeof(delta));
                std::memcpy(&bits, &delta, sizeof(bits));
                putU64(out, bits);
                putU64(out, failed ? 1 : 0);
            }
        }
        out.flush();
        fatal_if(!out, "short write to snapshot temp file ", tmp);
    }
    // The atomic publish: readers see the old file or the new file.
    fatal_if(std::rename(tmp.c_str(), path.c_str()) != 0,
             "cannot rename ", tmp, " over ", path);
}

CampaignSnapshot
readSnapshot(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    fatal_if(!in, "cannot open snapshot ", path);

    char magic[sizeof(snapshotMagic)] = {};
    in.read(magic, sizeof(magic));
    fatal_if(!in ||
                 std::memcmp(magic, snapshotMagic, sizeof(magic)) != 0,
             "file ", path, " is not a fidelity campaign snapshot");

    CampaignSnapshot snap;
    snap.configHash = getU64(in, path);
    std::uint64_t count = getU64(in, path);
    snap.shards.reserve(count);
    std::uint64_t prev_ordinal = 0;
    for (std::uint64_t i = 0; i < count; ++i) {
        ShardRecord r;
        r.ordinal = getU64(in, path);
        fatal_if(i > 0 && r.ordinal <= prev_ordinal, "snapshot ", path,
                 " has out-of-order shard ordinals");
        prev_ordinal = r.ordinal;
        r.cell = getU64(in, path);
        r.maskedCount = getU64(in, path);
        r.trials = getU64(in, path);
        fatal_if(r.maskedCount > r.trials, "snapshot ", path,
                 " has a shard with maskedCount > trials");
        std::uint64_t nsamples = getU64(in, path);
        fatal_if(nsamples > r.trials, "snapshot ", path,
                 " has a shard with more samples than trials");
        r.samples.reserve(nsamples);
        for (std::uint64_t s = 0; s < nsamples; ++s) {
            std::uint64_t bits = getU64(in, path);
            double delta;
            std::memcpy(&delta, &bits, sizeof(delta));
            bool failed = getU64(in, path) != 0;
            r.samples.emplace_back(delta, failed);
        }
        snap.shards.push_back(std::move(r));
    }
    return snap;
}

bool
snapshotExists(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return static_cast<bool>(in);
}

} // namespace fidelity
