#include "sim/table.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "sim/logging.hh"

namespace fidelity
{

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    panic_if(headers_.empty(), "Table requires at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    panic_if(cells.size() != headers_.size(),
             "Table row has ", cells.size(), " cells, expected ",
             headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
Table::num(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

std::string
Table::num(std::uint64_t v)
{
    return std::to_string(v);
}

std::string
Table::pct(double fraction, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << fraction * 100.0
       << "%";
    return os.str();
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(widths[c]))
               << row[c];
            if (c + 1 < row.size())
                os << "  ";
        }
        os << "\n";
    };

    print_row(headers_);
    std::size_t total = 0;
    for (std::size_t w : widths)
        total += w;
    total += 2 * (widths.size() - 1);
    os << std::string(total, '-') << "\n";
    for (const auto &row : rows_)
        print_row(row);
}

void
printHeading(std::ostream &os, const std::string &title)
{
    os << "\n" << title << "\n" << std::string(title.size(), '=') << "\n";
}

} // namespace fidelity
