#include "sim/parse.hh"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "sim/logging.hh"

namespace fidelity
{

namespace
{

// strtoll/strtod silently skip leading whitespace; a CLI argument with
// stray spaces is a quoting mistake worth naming, not forgiving.
bool startsWithSpace(const std::string &text)
{
    return !text.empty() &&
           std::isspace(static_cast<unsigned char>(text.front())) != 0;
}

} // namespace

long long parseIntArg(const std::string &what, const std::string &text,
                      long long min_value, long long max_value)
{
    fatal_if(text.empty(), "argument ", what, " is empty; expected an integer");
    fatal_if(startsWithSpace(text),
             "argument ", what, "='", text, "' is not an integer");
    errno = 0;
    char *end = nullptr;
    const long long v = std::strtoll(text.c_str(), &end, 10);
    fatal_if(end == text.c_str() || *end != '\0',
             "argument ", what, "='", text, "' is not an integer");
    fatal_if(errno == ERANGE || v < min_value || v > max_value,
             "argument ", what, "='", text, "' is out of range [",
             min_value, ", ", max_value, "]");
    return v;
}

double parseDoubleArg(const std::string &what, const std::string &text,
                      double min_value, double max_value)
{
    fatal_if(text.empty(), "argument ", what, " is empty; expected a number");
    fatal_if(startsWithSpace(text),
             "argument ", what, "='", text, "' is not a number");
    errno = 0;
    char *end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    fatal_if(end == text.c_str() || *end != '\0',
             "argument ", what, "='", text, "' is not a number");
    fatal_if(!std::isfinite(v),
             "argument ", what, "='", text, "' must be finite");
    fatal_if(errno == ERANGE || v < min_value || v > max_value,
             "argument ", what, "='", text, "' is out of range [",
             min_value, ", ", max_value, "]");
    return v;
}

} // namespace fidelity
