#include "sim/parse.hh"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "sim/logging.hh"

namespace fidelity
{

namespace
{

// strtoll/strtod silently skip leading whitespace; a CLI argument with
// stray spaces is a quoting mistake worth naming, not forgiving.
bool startsWithSpace(const std::string &text)
{
    return !text.empty() &&
           std::isspace(static_cast<unsigned char>(text.front())) != 0;
}

template <typename... Args>
std::string describe(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace

bool tryParseInt(const std::string &what, const std::string &text,
                 long long min_value, long long max_value,
                 long long &out, std::string &err)
{
    if (text.empty()) {
        err = describe("argument ", what, " is empty; expected an integer");
        return false;
    }
    if (startsWithSpace(text)) {
        err = describe("argument ", what, "='", text,
                       "' is not an integer");
        return false;
    }
    errno = 0;
    char *end = nullptr;
    const long long v = std::strtoll(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0') {
        err = describe("argument ", what, "='", text,
                       "' is not an integer");
        return false;
    }
    if (errno == ERANGE || v < min_value || v > max_value) {
        err = describe("argument ", what, "='", text,
                       "' is out of range [", min_value, ", ",
                       max_value, "]");
        return false;
    }
    out = v;
    return true;
}

bool tryParseDouble(const std::string &what, const std::string &text,
                    double min_value, double max_value, double &out,
                    std::string &err)
{
    if (text.empty()) {
        err = describe("argument ", what, " is empty; expected a number");
        return false;
    }
    if (startsWithSpace(text)) {
        err = describe("argument ", what, "='", text,
                       "' is not a number");
        return false;
    }
    errno = 0;
    char *end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0') {
        err = describe("argument ", what, "='", text,
                       "' is not a number");
        return false;
    }
    if (!std::isfinite(v)) {
        err = describe("argument ", what, "='", text,
                       "' must be finite");
        return false;
    }
    if (errno == ERANGE || v < min_value || v > max_value) {
        err = describe("argument ", what, "='", text,
                       "' is out of range [", min_value, ", ",
                       max_value, "]");
        return false;
    }
    out = v;
    return true;
}

long long parseIntArg(const std::string &what, const std::string &text,
                      long long min_value, long long max_value)
{
    long long v = 0;
    std::string err;
    if (!tryParseInt(what, text, min_value, max_value, v, err))
        fatal(err);
    return v;
}

double parseDoubleArg(const std::string &what, const std::string &text,
                      double min_value, double max_value)
{
    double v = 0.0;
    std::string err;
    if (!tryParseDouble(what, text, min_value, max_value, v, err))
        fatal(err);
    return v;
}

namespace
{

/** Cursor over a request document with shared diagnostics. */
struct JsonCursor
{
    const std::string &text;
    std::size_t pos = 0;

    void
    skipSpace()
    {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos])) != 0)
            ++pos;
    }

    bool atEnd() const { return pos >= text.size(); }

    char peek() const { return text[pos]; }
};

/** Parse a JSON string literal at in.pos (on the opening quote);
 *  writes the unescaped body and advances past the closing quote. */
bool
parseJsonString(JsonCursor &in, std::string &out, std::string &err)
{
    out.clear();
    ++in.pos; // opening quote
    while (true) {
        if (in.atEnd()) {
            err = "unterminated string in request JSON";
            return false;
        }
        char c = in.text[in.pos++];
        if (c == '"')
            return true;
        if (static_cast<unsigned char>(c) < 0x20) {
            err = "unescaped control character in request JSON string";
            return false;
        }
        if (c != '\\') {
            out.push_back(c);
            continue;
        }
        if (in.atEnd()) {
            err = "unterminated escape in request JSON string";
            return false;
        }
        char esc = in.text[in.pos++];
        switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
            // Requests are config knobs, not prose: accept \uXXXX only
            // for ASCII code points.
            if (in.text.size() - in.pos < 4) {
                err = "truncated \\u escape in request JSON string";
                return false;
            }
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
                char h = in.text[in.pos++];
                code <<= 4;
                if (h >= '0' && h <= '9')
                    code |= static_cast<unsigned>(h - '0');
                else if (h >= 'a' && h <= 'f')
                    code |= static_cast<unsigned>(h - 'a' + 10);
                else if (h >= 'A' && h <= 'F')
                    code |= static_cast<unsigned>(h - 'A' + 10);
                else {
                    err = "bad \\u escape in request JSON string";
                    return false;
                }
            }
            if (code > 0x7f) {
                err = "non-ASCII \\u escape in request JSON string";
                return false;
            }
            out.push_back(static_cast<char>(code));
            break;
        }
        default:
            err = describe("bad escape '\\", esc,
                           "' in request JSON string");
            return false;
        }
    }
}

/** Parse a scalar value token (number / true / false / null) as its
 *  literal text. */
bool
parseJsonScalar(JsonCursor &in, std::string &out, std::string &err)
{
    const std::size_t start = in.pos;
    while (!in.atEnd()) {
        char c = in.peek();
        if (c == ',' || c == '}' ||
            std::isspace(static_cast<unsigned char>(c)) != 0)
            break;
        if (c == '{' || c == '[' || c == '"' || c == ':') {
            err = describe("unexpected '", c, "' in request JSON value");
            return false;
        }
        ++in.pos;
    }
    if (in.pos == start) {
        err = "missing value in request JSON";
        return false;
    }
    out = in.text.substr(start, in.pos - start);
    // A scalar is either a number or one of the three keywords.
    if (out == "true" || out == "false" || out == "null")
        return true;
    double ignored = 0.0;
    std::string num_err;
    if (!tryParseDouble("value", out, -1e308, 1e308, ignored, num_err)) {
        err = describe("'", out, "' is not a valid request JSON value");
        return false;
    }
    return true;
}

} // namespace

bool
parseJsonObject(const std::string &text,
                std::map<std::string, std::string> &fields,
                std::string &err)
{
    fields.clear();
    JsonCursor in{text};
    in.skipSpace();
    if (in.atEnd() || in.peek() != '{') {
        err = "request is not a JSON object (expected '{')";
        return false;
    }
    ++in.pos;
    in.skipSpace();
    if (!in.atEnd() && in.peek() == '}') {
        ++in.pos;
    } else {
        while (true) {
            in.skipSpace();
            if (in.atEnd() || in.peek() != '"') {
                err = "expected a quoted key in request JSON";
                fields.clear();
                return false;
            }
            std::string key;
            if (!parseJsonString(in, key, err)) {
                fields.clear();
                return false;
            }
            if (fields.count(key) != 0) {
                err = describe("duplicate key \"", key,
                               "\" in request JSON");
                fields.clear();
                return false;
            }
            in.skipSpace();
            if (in.atEnd() || in.peek() != ':') {
                err = describe("expected ':' after key \"", key, "\"");
                fields.clear();
                return false;
            }
            ++in.pos;
            in.skipSpace();
            if (in.atEnd()) {
                err = describe("missing value for key \"", key, "\"");
                fields.clear();
                return false;
            }
            std::string value;
            if (in.peek() == '"') {
                if (!parseJsonString(in, value, err)) {
                    fields.clear();
                    return false;
                }
            } else if (in.peek() == '{' || in.peek() == '[') {
                err = describe("key \"", key, "\" has a nested value; "
                               "service requests are flat objects");
                fields.clear();
                return false;
            } else if (!parseJsonScalar(in, value, err)) {
                fields.clear();
                return false;
            }
            fields.emplace(std::move(key), std::move(value));
            in.skipSpace();
            if (!in.atEnd() && in.peek() == ',') {
                ++in.pos;
                continue;
            }
            if (!in.atEnd() && in.peek() == '}') {
                ++in.pos;
                break;
            }
            err = "expected ',' or '}' in request JSON";
            fields.clear();
            return false;
        }
    }
    in.skipSpace();
    if (!in.atEnd()) {
        err = "trailing bytes after the request JSON object";
        fields.clear();
        return false;
    }
    return true;
}

} // namespace fidelity
