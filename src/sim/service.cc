#include "sim/service.hh"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>
#include <type_traits>

#include "sim/checkpoint.hh"
#include "sim/json.hh"
#include "sim/logging.hh"
#include "sim/metrics.hh"
#include "sim/parse.hh"
#include "sim/service_proto.hh"
#include "workloads/metrics.hh"
#include "workloads/models.hh"

#if !defined(_WIN32)
#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>
#endif

namespace fidelity
{

namespace
{

template <typename... Args>
std::string
describe(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

std::string
hexHash(std::uint64_t h)
{
    char buf[20];
    std::snprintf(buf, sizeof(buf), "0x%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

double
nowSec()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

bool
tryParsePrecision(const std::string &s, Precision &p)
{
    if (s == "fp32") { p = Precision::FP32; return true; }
    if (s == "fp16") { p = Precision::FP16; return true; }
    if (s == "int16") { p = Precision::INT16; return true; }
    if (s == "int8") { p = Precision::INT8; return true; }
    return false;
}

/** Request-grammar (lowercase) name of a precision — the inverse of
 *  tryParsePrecision, unlike precisionName()'s display casing. */
const char *
requestPrecisionName(Precision p)
{
    switch (p) {
    case Precision::FP32: return "fp32";
    case Precision::FP16: return "fp16";
    case Precision::INT16: return "int16";
    case Precision::INT8: return "int8";
    }
    return "fp16";
}

bool
knownMetricName(const std::string &s)
{
    return s == "top1" || s == "bleu10" || s == "bleu20" ||
           s == "det10" || s == "det20";
}

/** Tenant labels feed metric names and status JSON; keep them to a
 *  filename-safe alphabet so client input cannot mangle either. */
bool
validTenantName(const std::string &s)
{
    if (s.size() > 64)
        return false;
    for (char c : s) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_' || c == '-';
        if (!ok)
            return false;
    }
    return true;
}

} // namespace

// ----- Campaign requests -------------------------------------------

bool
tryParseServiceRequest(const std::string &json, ServiceRequest &req,
                       std::string &err)
{
    std::map<std::string, std::string> fields;
    if (!parseJsonObject(json, fields, err))
        return false;

    req = ServiceRequest{};
    // Integer/double fields go through the checked sim/parse twins so
    // a bad token names the key; the daemon answers with `err` instead
    // of dying.
    auto takeInt = [&](const char *key, long long lo, long long hi,
                       auto &out) {
        auto it = fields.find(key);
        if (it == fields.end())
            return true;
        long long v = 0;
        if (!tryParseInt(key, it->second, lo, hi, v, err))
            return false;
        out = static_cast<std::decay_t<decltype(out)>>(v);
        fields.erase(it);
        return true;
    };
    auto takeDouble = [&](const char *key, double lo, double hi,
                          double &out) {
        auto it = fields.find(key);
        if (it == fields.end())
            return true;
        if (!tryParseDouble(key, it->second, lo, hi, out, err))
            return false;
        fields.erase(it);
        return true;
    };
    auto takeString = [&](const char *key, std::string &out) {
        auto it = fields.find(key);
        if (it == fields.end())
            return;
        out = it->second;
        fields.erase(it);
    };

    takeString("network", req.network);
    std::string precision = "fp16";
    takeString("precision", precision);
    takeString("metric", req.metric);
    takeString("tenant", req.tenant);
    if (!takeInt("net_seed", 0,
                 std::numeric_limits<long long>::max(), req.netSeed) ||
        !takeInt("input_seed", 0,
                 std::numeric_limits<long long>::max(),
                 req.inputSeed) ||
        !takeInt("samples_per_category", 1, 1 << 24,
                 req.samplesPerCategory) ||
        !takeInt("seed", 0, std::numeric_limits<long long>::max(),
                 req.seed) ||
        !takeInt("shard_grain", 1, 1 << 20, req.shardGrain) ||
        !takeDouble("output_clamp_abs", 0.0, 1e12,
                    req.outputClampAbs) ||
        !takeDouble("target_half_width", 0.0, 1.0,
                    req.targetHalfWidth) ||
        !takeInt("threads", 0, 4096, req.threads) ||
        !takeInt("batch_width", 1, 8, req.batchWidth))
        return false;

    if (!fields.empty()) {
        err = describe("unknown request key \"", fields.begin()->first,
                       "\"");
        return false;
    }
    const auto &names = studyNetworkNames();
    if (std::find(names.begin(), names.end(), req.network) ==
        names.end()) {
        err = describe("unknown network \"", req.network, "\"");
        return false;
    }
    if (!tryParsePrecision(precision, req.precision)) {
        err = describe("unknown precision \"", precision, "\"");
        return false;
    }
    if (!knownMetricName(req.metric)) {
        err = describe("unknown metric \"", req.metric, "\"");
        return false;
    }
    if (!validTenantName(req.tenant)) {
        err = describe("invalid tenant \"", req.tenant,
                       "\" (want [A-Za-z0-9_-], at most 64 chars)");
        return false;
    }
    return true;
}

std::string
serviceRequestJson(const ServiceRequest &req)
{
    JsonLineBuilder b;
    b.field("network", req.network);
    b.field("precision", requestPrecisionName(req.precision));
    b.field("metric", req.metric);
    b.field("net_seed", req.netSeed);
    b.field("input_seed", req.inputSeed);
    b.field("samples_per_category", req.samplesPerCategory);
    b.field("seed", req.seed);
    b.field("shard_grain", req.shardGrain);
    b.field("output_clamp_abs", req.outputClampAbs);
    b.field("target_half_width", req.targetHalfWidth);
    b.field("threads", req.threads);
    b.field("batch_width", req.batchWidth);
    // Omitted when empty so pre-tenant request JSON round-trips to the
    // same bytes (the default tenant is the empty string).
    if (!req.tenant.empty())
        b.field("tenant", req.tenant);
    return b.str();
}

Network
buildServiceNetwork(const ServiceRequest &req)
{
    Network net = buildNetwork(req.network, req.netSeed);
    net.setPrecision(req.precision);
    if (req.precision == Precision::INT16 ||
        req.precision == Precision::INT8)
        net.calibrate(serviceInput(req));
    return net;
}

Tensor
serviceInput(const ServiceRequest &req)
{
    return defaultInputFor(req.network, req.inputSeed);
}

CorrectnessFn
serviceMetric(const ServiceRequest &req)
{
    if (req.metric == "top1")
        return top1Metric();
    if (req.metric == "bleu10")
        return bleuMetric(0.10);
    if (req.metric == "bleu20")
        return bleuMetric(0.20);
    if (req.metric == "det10")
        return detectionMetric(0.10);
    if (req.metric == "det20")
        return detectionMetric(0.20);
    fatal("unknown metric '", req.metric, "'");
}

CampaignConfig
campaignConfigFor(const ServiceRequest &req)
{
    CampaignConfig cfg;
    cfg.samplesPerCategory = req.samplesPerCategory;
    cfg.seed = req.seed;
    cfg.shardGrain = req.shardGrain;
    cfg.outputClampAbs = req.outputClampAbs;
    cfg.targetHalfWidth = req.targetHalfWidth;
    cfg.numThreads = req.threads;
    cfg.batchWidth = req.batchWidth;
    return cfg;
}

// ----- Lease bookkeeping -------------------------------------------

LeaseBook::LeaseBook(std::uint64_t planShards, std::uint64_t leaseShards)
{
    fatal_if(leaseShards == 0, "leaseShards must be > 0");
    for (std::uint64_t first = 0; first < planShards;
         first += leaseShards) {
        Chunk c;
        c.first = first;
        c.count = std::min(leaseShards, planShards - first);
        chunks_.push_back(std::move(c));
    }
}

void
LeaseBook::expireStale(double now_sec)
{
    for (Chunk &c : chunks_) {
        if (c.state == ChunkState::Leased && c.deadline < now_sec) {
            warn("lease of shards [", c.first, ", ",
                 c.first + c.count, ") to ", c.owner,
                 " expired; re-issuing");
            c.state = ChunkState::Unleased;
            c.owner.clear();
            ++expired_;
        }
    }
}

bool
LeaseBook::lease(const std::string &worker, double now_sec,
                 double timeout_sec, std::uint64_t &first,
                 std::uint64_t &count)
{
    expireStale(now_sec);
    for (Chunk &c : chunks_) {
        if (c.state != ChunkState::Unleased)
            continue;
        c.state = ChunkState::Leased;
        c.owner = worker;
        c.deadline = now_sec + timeout_sec;
        first = c.first;
        count = c.count;
        return true;
    }
    return false;
}

LeaseBook::ResultOutcome
LeaseBook::complete(std::uint64_t first, std::uint64_t count)
{
    for (Chunk &c : chunks_) {
        if (c.first != first || c.count != count)
            continue;
        if (c.state == ChunkState::Merged)
            return ResultOutcome::Duplicate;
        // A result is accepted from an Unleased chunk too: the lease
        // expired but the journal is the journal — deterministic, so
        // first-to-arrive wins and the re-issue becomes a duplicate.
        c.state = ChunkState::Merged;
        c.owner.clear();
        return ResultOutcome::Merged;
    }
    return ResultOutcome::Unknown;
}

void
LeaseBook::heartbeat(const std::string &worker, double now_sec,
                     double timeout_sec)
{
    for (Chunk &c : chunks_)
        if (c.state == ChunkState::Leased && c.owner == worker)
            c.deadline = now_sec + timeout_sec;
}

std::uint64_t
LeaseBook::release(const std::string &worker)
{
    std::uint64_t n = 0;
    for (Chunk &c : chunks_) {
        if (c.state == ChunkState::Leased && c.owner == worker) {
            c.state = ChunkState::Unleased;
            c.owner.clear();
            ++n;
            ++expired_;
        }
    }
    return n;
}

void
LeaseBook::markMerged(std::uint64_t first, std::uint64_t count)
{
    for (Chunk &c : chunks_)
        if (c.first == first && c.count == count)
            c.state = ChunkState::Merged;
}

bool
LeaseBook::allMerged() const
{
    for (const Chunk &c : chunks_)
        if (c.state != ChunkState::Merged)
            return false;
    return true;
}

std::uint64_t
LeaseBook::mergedChunks() const
{
    std::uint64_t n = 0;
    for (const Chunk &c : chunks_)
        if (c.state == ChunkState::Merged)
            ++n;
    return n;
}

std::uint64_t
LeaseBook::chunkCount() const
{
    return chunks_.size();
}

#if !defined(_WIN32)

// ----- Sockets ------------------------------------------------------

namespace
{

struct ServiceAddr
{
    bool unixSocket = true;
    std::string path; //!< unix
    std::string host; //!< tcp
    std::string port; //!< tcp
};

ServiceAddr
parseServiceAddr(const std::string &addr)
{
    ServiceAddr a;
    if (addr.rfind("unix:", 0) == 0) {
        a.unixSocket = true;
        a.path = addr.substr(5);
        fatal_if(a.path.empty(), "empty unix socket path in '", addr,
                 "'");
        fatal_if(a.path.size() >= sizeof(sockaddr_un{}.sun_path),
                 "unix socket path '", a.path, "' is too long");
        return a;
    }
    if (addr.rfind("tcp:", 0) == 0) {
        a.unixSocket = false;
        const std::string rest = addr.substr(4);
        const std::size_t colon = rest.find_last_of(':');
        fatal_if(colon == std::string::npos || colon == 0 ||
                     colon + 1 == rest.size(),
                 "tcp address '", addr,
                 "' must look like tcp:<host>:<port>");
        a.host = rest.substr(0, colon);
        a.port = rest.substr(colon + 1);
        return a;
    }
    fatal("service address '", addr,
          "' must start with unix: or tcp:");
}

int
listenOn(const ServiceAddr &a)
{
    int fd = -1;
    if (a.unixSocket) {
        fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        fatal_if(fd < 0, "cannot create unix socket: ",
                 std::strerror(errno));
        ::unlink(a.path.c_str()); // stale socket from a dead process
        sockaddr_un sa{};
        sa.sun_family = AF_UNIX;
        std::strncpy(sa.sun_path, a.path.c_str(),
                     sizeof(sa.sun_path) - 1);
        fatal_if(::bind(fd, reinterpret_cast<sockaddr *>(&sa),
                        sizeof(sa)) != 0,
                 "cannot bind ", a.path, ": ", std::strerror(errno));
    } else {
        addrinfo hints{};
        hints.ai_family = AF_UNSPEC;
        hints.ai_socktype = SOCK_STREAM;
        hints.ai_flags = AI_PASSIVE;
        addrinfo *res = nullptr;
        int rc = ::getaddrinfo(a.host.c_str(), a.port.c_str(), &hints,
                               &res);
        fatal_if(rc != 0, "cannot resolve ", a.host, ":", a.port, ": ",
                 ::gai_strerror(rc));
        fd = ::socket(res->ai_family, res->ai_socktype,
                      res->ai_protocol);
        fatal_if(fd < 0, "cannot create tcp socket: ",
                 std::strerror(errno));
        int one = 1;
        ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
        if (::bind(fd, res->ai_addr, res->ai_addrlen) != 0) {
            ::freeaddrinfo(res);
            fatal("cannot bind ", a.host, ":", a.port, ": ",
                  std::strerror(errno));
        }
        ::freeaddrinfo(res);
    }
    fatal_if(::listen(fd, 64) != 0, "cannot listen: ",
             std::strerror(errno));
    return fd;
}

int
connectOnce(const ServiceAddr &a)
{
    if (a.unixSocket) {
        int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0)
            return -1;
        sockaddr_un sa{};
        sa.sun_family = AF_UNIX;
        std::strncpy(sa.sun_path, a.path.c_str(),
                     sizeof(sa.sun_path) - 1);
        if (::connect(fd, reinterpret_cast<sockaddr *>(&sa),
                      sizeof(sa)) != 0) {
            ::close(fd);
            return -1;
        }
        return fd;
    }
    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo *res = nullptr;
    if (::getaddrinfo(a.host.c_str(), a.port.c_str(), &hints, &res) !=
        0)
        return -1;
    int fd = -1;
    for (addrinfo *p = res; p; p = p->ai_next) {
        fd = ::socket(p->ai_family, p->ai_socktype, p->ai_protocol);
        if (fd < 0)
            continue;
        if (::connect(fd, p->ai_addr, p->ai_addrlen) == 0)
            break;
        ::close(fd);
        fd = -1;
    }
    ::freeaddrinfo(res);
    return fd;
}

int
connectWithRetry(const ServiceAddr &a, const std::string &addr,
                 double timeout_sec)
{
    const double deadline = nowSec() + timeout_sec;
    for (;;) {
        int fd = connectOnce(a);
        if (fd >= 0)
            return fd;
        if (nowSec() >= deadline)
            fatal("cannot connect to ", addr, " within ", timeout_sec,
                  " s");
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
}

/**
 * Default frame-write deadline of coordinator/worker traffic.  A
 * stalled-but-open peer (kernel buffers full, reader wedged) used to
 * pin the writing thread in blocking ::send forever; now it costs at
 * most this long, after which the peer is treated as dead — the same
 * outcome its lease expiry would reach anyway.
 */
constexpr double kFrameWriteDeadlineSec = 120.0;

/** sendBytesWithDeadline with the service-internal default. */
bool
sendBytes(int fd, std::string_view bytes)
{
    return sendBytesWithDeadline(fd, bytes, kFrameWriteDeadlineSec);
}

/** Frame reader over one socket: buffers bytes and yields frames via
 *  the streaming decoder; a Malformed verdict poisons the peer. */
class FrameConn
{
  public:
    explicit FrameConn(int fd) : fd_(fd) {}

    enum class Status { Frame, Timeout, Closed, Malformed };

    /** Read one frame, waiting at most timeout_sec (< 0 = forever). */
    Status
    readFrame(Frame &f, double timeout_sec, std::string &err)
    {
        const bool bounded = timeout_sec >= 0.0;
        const double deadline = nowSec() + timeout_sec;
        for (;;) {
            std::size_t consumed = 0;
            switch (tryDecodeFrame(buf_, f, consumed, err)) {
            case FrameDecodeStatus::Complete:
                buf_.erase(0, consumed);
                return Status::Frame;
            case FrameDecodeStatus::Malformed:
                return Status::Malformed;
            case FrameDecodeStatus::NeedMore:
                break;
            }
            int wait_ms = 200;
            if (bounded) {
                const double left = deadline - nowSec();
                if (left <= 0.0)
                    return Status::Timeout;
                wait_ms = std::min(
                    wait_ms,
                    static_cast<int>(left * 1000.0) + 1);
            }
            pollfd pfd{fd_, POLLIN, 0};
            int rc = ::poll(&pfd, 1, wait_ms);
            if (rc < 0) {
                if (errno == EINTR)
                    continue;
                err = describe("poll failed: ", std::strerror(errno));
                return Status::Closed;
            }
            if (rc == 0) {
                if (bounded && nowSec() >= deadline)
                    return Status::Timeout;
                continue;
            }
            char chunk[16384];
            ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
            if (n == 0) {
                err = "peer closed the connection";
                return Status::Closed;
            }
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                err = describe("recv failed: ",
                               std::strerror(errno));
                return Status::Closed;
            }
            buf_.append(chunk, static_cast<std::size_t>(n));
        }
    }

  private:
    int fd_;
    std::string buf_;
};

std::string
readWholeFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return {};
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
}

} // namespace

bool
sendBytesWithDeadline(int fd, std::string_view bytes, double timeoutSec)
{
    const bool bounded = timeoutSec >= 0.0;
    const double deadline = nowSec() + timeoutSec;
    const char *p = bytes.data();
    std::size_t left = bytes.size();
    while (left > 0) {
        // MSG_DONTWAIT keeps the fd's own flags out of it: the send
        // either makes progress now or reports EAGAIN, and the wait
        // happens in poll where a deadline is enforceable.
        ssize_t n =
            ::send(fd, p, left, MSG_NOSIGNAL | MSG_DONTWAIT);
        if (n > 0) {
            p += n;
            left -= static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
            errno != EINTR)
            return false;
        int wait_ms = 200;
        if (bounded) {
            const double remaining = deadline - nowSec();
            if (remaining <= 0.0)
                return false;
            wait_ms = std::min(
                wait_ms, static_cast<int>(remaining * 1000.0) + 1);
        }
        pollfd pfd{fd, POLLOUT, 0};
        int rc = ::poll(&pfd, 1, wait_ms);
        if (rc < 0 && errno != EINTR)
            return false;
        if (rc > 0 && (pfd.revents & (POLLERR | POLLNVAL)))
            return false;
    }
    return true;
}

// ----- Coordinator --------------------------------------------------

namespace
{

/** Shared state of one coordinator run. */
struct CoordCtx
{
    std::mutex m;
    std::condition_variable cv;

    LeaseBook book;
    std::map<std::uint64_t, ShardRecord> merged; //!< by ordinal

    std::uint64_t cfgHash = 0;
    std::string requestJson;
    const CoordinatorOptions *opts = nullptr;

    bool stopRequested = false; //!< stopAfterMergedChunks fired
    double lastCheckpoint = 0.0;

    WorkerTopology topo;

    CoordCtx(std::uint64_t plan_shards, std::uint64_t lease_shards)
        : book(plan_shards, lease_shards)
    {}

    /** Under m: nothing left to serve. */
    bool
    doneServing() const
    {
        return stopRequested || book.allMerged();
    }

    /** Under m: write the merged journals to the checkpoint path. */
    void
    checkpointLocked(bool final_write)
    {
        if (opts->checkpointPath.empty())
            return;
        const double now = nowSec();
        if (!final_write &&
            now - lastCheckpoint < opts->checkpointEverySec)
            return;
        lastCheckpoint = now;
        CampaignSnapshot snap;
        snap.configHash = cfgHash;
        snap.shards.reserve(merged.size());
        for (const auto &[ordinal, rec] : merged)
            snap.shards.push_back(rec);
        writeSnapshot(opts->checkpointPath, snap);
    }

    WorkerProcessTelemetry &
    workerSlotLocked(const std::string &name)
    {
        for (WorkerProcessTelemetry &w : topo.workers)
            if (w.name == name)
                return w;
        WorkerProcessTelemetry w;
        w.name = name;
        topo.workers.push_back(std::move(w));
        return topo.workers.back();
    }
};

void serveWorkerConn(int fd, CoordCtx &ctx);

/** Serve one worker connection (one thread each).  Every exit path —
 *  handshake rejection, disconnect, DONE — must release the socket:
 *  a dropped peer otherwise holds its fd (and its peer's recv) until
 *  the whole process exits. */
void
serveWorker(int fd, CoordCtx &ctx)
{
    serveWorkerConn(fd, ctx);
    ::close(fd);
}

void
serveWorkerConn(int fd, CoordCtx &ctx)
{
    FrameConn conn(fd);
    Frame f;
    std::string err;
    std::string peer = "worker";

    auto drop = [&](const std::string &why) {
        warn("dropping ", peer, ": ", why);
        sendBytes(fd, encodeErrorFrame(why));
        std::lock_guard<std::mutex> lock(ctx.m);
        const std::uint64_t reverted = ctx.book.release(peer);
        if (reverted > 0)
            ctx.workerSlotLocked(peer).leasesExpired += reverted;
        ctx.cv.notify_all();
    };

    // HELLO → SPEC → READY handshake.
    if (conn.readFrame(f, 30.0, err) != FrameConn::Status::Frame)
        return;
    HelloPayload hello;
    if (!tryParseHello(f, hello, err)) {
        drop(err);
        return;
    }
    peer = hello.worker.empty() ? "unnamed worker" : hello.worker;
    if (hello.version != kServiceProtocolVersion) {
        drop(describe("protocol version ", hello.version,
                      " does not match coordinator version ",
                      kServiceProtocolVersion));
        return;
    }
    {
        std::lock_guard<std::mutex> lock(ctx.m);
        WorkerProcessTelemetry &w = ctx.workerSlotLocked(peer);
        w.threads = static_cast<int>(hello.threads);
    }
    SpecPayload spec;
    spec.configHash = ctx.cfgHash;
    spec.requestJson = ctx.requestJson;
    if (!sendBytes(fd, encodeSpec(spec)))
        return;
    if (conn.readFrame(f, 60.0, err) != FrameConn::Status::Frame)
        return;
    ReadyPayload ready;
    if (!tryParseReady(f, ready, err)) {
        drop(err);
        return;
    }
    if (ready.configHash != ctx.cfgHash) {
        // The worker rebuilt a different campaign from the same spec —
        // a build/version skew that would silently corrupt the merge.
        drop(describe("READY config hash ", hexHash(ready.configHash),
                      " does not match campaign ",
                      hexHash(ctx.cfgHash)));
        return;
    }

    for (;;) {
        // Grant a lease (or finish).
        std::uint64_t first = 0, count = 0;
        {
            std::unique_lock<std::mutex> lock(ctx.m);
            for (;;) {
                if (ctx.doneServing()) {
                    sendBytes(fd, encodeDone());
                    return;
                }
                if (ctx.book.lease(peer, nowSec(),
                                   ctx.opts->leaseTimeoutSec, first,
                                   count)) {
                    ctx.workerSlotLocked(peer).leases += 1;
                    break;
                }
                // Everything is leased out; wait for a merge, an
                // expiry, or completion.
                ctx.cv.wait_for(lock,
                                std::chrono::milliseconds(250));
            }
        }
        LeasePayload lease{first, count};
        if (!sendBytes(fd, encodeLease(lease))) {
            drop("connection lost while sending LEASE");
            return;
        }

        // Await the RESULT (heartbeats interleave).
        bool merged_one = false;
        while (!merged_one) {
            switch (conn.readFrame(f, 0.5, err)) {
            case FrameConn::Status::Timeout:
                // The worker is executing; lease expiry (if it is
                // actually dead) is the book's business.
                continue;
            case FrameConn::Status::Closed: {
                std::lock_guard<std::mutex> lock(ctx.m);
                const std::uint64_t reverted = ctx.book.release(peer);
                if (reverted > 0) {
                    ctx.workerSlotLocked(peer).leasesExpired +=
                        reverted;
                    warn(peer, " disconnected mid-lease; ", reverted,
                         " chunk(s) re-issued");
                }
                ctx.cv.notify_all();
                return;
            }
            case FrameConn::Status::Malformed:
                drop(err);
                return;
            case FrameConn::Status::Frame:
                break;
            }
            if (f.type == FrameType::Heartbeat) {
                std::lock_guard<std::mutex> lock(ctx.m);
                ctx.book.heartbeat(peer, nowSec(),
                                   ctx.opts->leaseTimeoutSec);
                continue;
            }
            ResultPayload result;
            if (!tryParseResult(f, result, err)) {
                drop(err);
                return;
            }
            // The journal travels as FIDCKPT bytes; the decoder
            // validates every count against the byte budget, so a
            // corrupt journal names the peer instead of allocating.
            CampaignSnapshot snap;
            if (!tryDecodeSnapshot(result.journal.data(),
                                   result.journal.size(),
                                   "RESULT journal from " + peer, snap,
                                   err)) {
                drop(err);
                return;
            }
            if (snap.configHash != ctx.cfgHash) {
                drop(describe("RESULT journal config hash ",
                              hexHash(snap.configHash),
                              " does not match campaign ",
                              hexHash(ctx.cfgHash)));
                return;
            }
            if (snap.shards.size() != result.count ||
                (result.count > 0 &&
                 (snap.shards.front().ordinal < result.first ||
                  snap.shards.back().ordinal >=
                      result.first + result.count))) {
                drop(describe("RESULT journal does not cover shards [",
                              result.first, ", ",
                              result.first + result.count, ")"));
                return;
            }

            std::lock_guard<std::mutex> lock(ctx.m);
            switch (ctx.book.complete(result.first, result.count)) {
            case LeaseBook::ResultOutcome::Unknown:
                drop(describe("RESULT for unknown lease [",
                              result.first, ", ",
                              result.first + result.count, ")"));
                return;
            case LeaseBook::ResultOutcome::Duplicate:
                // A slow worker raced a re-issue; the journals are
                // deterministic, so dropping the copy is lossless.
                inform("duplicate RESULT for shards [", result.first,
                       ", ", result.first + result.count, ") from ",
                       peer, " ignored");
                merged_one = true;
                break;
            case LeaseBook::ResultOutcome::Merged: {
                WorkerProcessTelemetry &w = ctx.workerSlotLocked(peer);
                w.shards += result.count;
                for (ShardRecord &r : snap.shards) {
                    w.injections += r.trials;
                    ctx.merged[r.ordinal] = std::move(r);
                }
                if (ctx.opts->stopAfterMergedChunks > 0 &&
                    ctx.book.mergedChunks() >=
                        ctx.opts->stopAfterMergedChunks)
                    ctx.stopRequested = true;
                ctx.checkpointLocked(false);
                merged_one = true;
                break;
            }
            }
            ctx.cv.notify_all();
        }
    }
}

} // namespace

CoordinatorRun
runCampaignCoordinator(const ServiceRequest &req,
                       const CoordinatorOptions &opts)
{
    fatal_if(req.targetHalfWidth > 0.0,
             "adaptive campaigns are served in-process; the "
             "coordinator distributes fixed schedules only");
    Network net = buildServiceNetwork(req);
    Tensor input = serviceInput(req);
    CorrectnessFn metric = serviceMetric(req);
    CampaignConfig cfg = campaignConfigFor(req);
    const std::uint64_t cfg_hash = campaignConfigHash(net, input, cfg);
    const std::vector<ShardPlanEntry> plan = fixedShardPlan(net, cfg);
    fatal_if(plan.empty(), "campaign request plans zero shards");

    CoordCtx ctx(plan.size(), opts.leaseShards);
    ctx.cfgHash = cfg_hash;
    ctx.requestJson = serviceRequestJson(req);
    ctx.opts = &opts;
    ctx.topo.coordinator = opts.listenAddr;
    ctx.topo.leaseShards = opts.leaseShards;

    // Coordinator restart: restore the journals a previous run merged
    // and re-issue only the rest.  Partial chunks restore their
    // records too — re-execution overwrites them with identical bytes.
    if (!opts.resumeFrom.empty() && snapshotExists(opts.resumeFrom)) {
        CampaignSnapshot snap = readSnapshot(opts.resumeFrom);
        fatal_if(snap.configHash != cfg_hash,
                 "snapshot ", opts.resumeFrom, " was written by a "
                 "campaign with a different sample identity "
                 "(config hash mismatch)");
        for (ShardRecord &r : snap.shards)
            ctx.merged[r.ordinal] = std::move(r);
        for (std::uint64_t first = 0; first < plan.size();
             first += opts.leaseShards) {
            const std::uint64_t count =
                std::min(opts.leaseShards, plan.size() - first);
            bool covered = true;
            for (std::uint64_t o = first; o < first + count; ++o)
                if (ctx.merged.find(o) == ctx.merged.end()) {
                    covered = false;
                    break;
                }
            if (covered)
                ctx.book.markMerged(first, count);
        }
        inform("coordinator resuming: ", ctx.merged.size(),
               " shard journals restored, ", ctx.book.mergedChunks(),
               " of ", ctx.book.chunkCount(), " chunks already merged");
    }

    const ServiceAddr addr = parseServiceAddr(opts.listenAddr);
    int listen_fd = listenOn(addr);
    inform("coordinator serving ", plan.size(), " shards (",
           ctx.book.chunkCount(), " chunks of ", opts.leaseShards,
           ") on ", opts.listenAddr);

    std::vector<std::thread> conns;
    for (;;) {
        {
            std::lock_guard<std::mutex> lock(ctx.m);
            if (ctx.doneServing())
                break;
        }
        pollfd pfd{listen_fd, POLLIN, 0};
        int rc = ::poll(&pfd, 1, 200);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            fatal("coordinator poll failed: ", std::strerror(errno));
        }
        if (rc == 0)
            continue;
        int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd < 0)
            continue;
        conns.emplace_back(serveWorker, fd, std::ref(ctx));
    }
    // Connection threads send DONE to their (idle) workers and exit;
    // threads blocked on an executing worker finish after its RESULT.
    for (std::thread &t : conns)
        t.join();
    ::close(listen_fd);
    if (addr.unixSocket)
        ::unlink(addr.path.c_str());

    CoordinatorRun run;
    run.topology = ctx.topo;
    {
        std::lock_guard<std::mutex> lock(ctx.m);
        ctx.checkpointLocked(true);
        run.complete = ctx.book.allMerged();
    }
    if (!run.complete) {
        inform("coordinator stopped after ", ctx.book.mergedChunks(),
               " of ", ctx.book.chunkCount(),
               " chunks; journals are in ", opts.checkpointPath);
        return run;
    }

    // The merge: hand the complete journal set to runCampaign as an
    // in-memory resume snapshot.  Zero shards execute; the merge loop,
    // checksum, and manifest "results" section are exactly the
    // single-process code path — distribution cannot perturb them.
    auto snap = std::make_shared<CampaignSnapshot>();
    snap->configHash = cfg_hash;
    snap->shards.reserve(ctx.merged.size());
    for (auto &[ordinal, rec] : ctx.merged)
        snap->shards.push_back(std::move(rec));
    CampaignConfig merge_cfg = cfg;
    merge_cfg.resumeSnapshot = snap;
    merge_cfg.topology =
        std::make_shared<WorkerTopology>(run.topology);
    merge_cfg.reportPath = opts.reportPath;
    run.result = runCampaign(net, input, metric, merge_cfg);
    return run;
}

// ----- Worker -------------------------------------------------------

int
runServiceWorker(const WorkerOptions &opts)
{
    const ServiceAddr addr = parseServiceAddr(opts.connectAddr);
    int fd = connectWithRetry(addr, opts.connectAddr,
                              opts.connectTimeoutSec);
    FrameConn conn(fd);
    std::mutex write_mutex; // RESULT writer vs heartbeat thread

    HelloPayload hello;
    hello.worker = opts.name;
    hello.threads = static_cast<std::uint64_t>(opts.threads);
    fatal_if(!sendBytes(fd, encodeHello(hello)),
             "cannot send HELLO to ", opts.connectAddr);

    Frame f;
    std::string err;
    fatal_if(conn.readFrame(f, 60.0, err) != FrameConn::Status::Frame,
             "no SPEC from coordinator: ", err);
    SpecPayload spec;
    fatal_if(!tryParseSpec(f, spec, err), "bad SPEC: ", err);
    ServiceRequest req;
    fatal_if(!tryParseServiceRequest(spec.requestJson, req, err),
             "coordinator sent an invalid campaign request: ", err);

    Network net = buildServiceNetwork(req);
    Tensor input = serviceInput(req);
    CorrectnessFn metric = serviceMetric(req);
    CampaignConfig cfg = campaignConfigFor(req);
    const std::uint64_t cfg_hash = campaignConfigHash(net, input, cfg);
    if (cfg_hash != spec.configHash)
        warn("worker ", opts.name, " computed config hash ",
             hexHash(cfg_hash), ", coordinator announced ",
             hexHash(spec.configHash),
             "; sending READY and expecting rejection");
    ReadyPayload ready{cfg_hash};
    fatal_if(!sendBytes(fd, encodeReady(ready)),
             "cannot send READY to ", opts.connectAddr);

    // Heartbeats flow from a side thread while the main thread
    // executes leases, so a long shard never looks like death.
    std::atomic<bool> stop_heartbeat{false};
    std::thread heartbeat([&] {
        const auto period = std::chrono::duration<double>(
            std::max(opts.heartbeatSec, 0.1));
        while (!stop_heartbeat.load(std::memory_order_relaxed)) {
            std::this_thread::sleep_for(period);
            if (stop_heartbeat.load(std::memory_order_relaxed))
                break;
            std::lock_guard<std::mutex> lock(write_mutex);
            if (!sendBytes(fd, encodeHeartbeat()))
                break;
        }
    });
    auto stopHeartbeat = [&] {
        stop_heartbeat.store(true, std::memory_order_relaxed);
        heartbeat.join();
    };

    // One executor for every lease this worker drains: the golden
    // forward pass, result cache, and engines are paid once, as the
    // in-process fan-out pays them — per-lease cost is just the
    // shards themselves.  (The heartbeat thread above is already
    // running, so a slow construction never looks like death.)
    FixedShardExecutor executor(net, input, metric, cfg);

    std::uint64_t results_sent = 0;
    for (;;) {
        FrameConn::Status st = conn.readFrame(f, -1.0, err);
        if (st != FrameConn::Status::Frame) {
            stopHeartbeat();
            fatal("worker ", opts.name, " lost its coordinator: ",
                  err);
        }
        if (f.type == FrameType::Done || f.type == FrameType::Drain) {
            stopHeartbeat();
            ::close(fd);
            return 0;
        }
        if (f.type == FrameType::Error) {
            std::string message;
            tryParseText(f, FrameType::Error, message, err);
            stopHeartbeat();
            fatal("coordinator rejected worker ", opts.name, ": ",
                  message);
        }
        LeasePayload lease;
        if (!tryParseLease(f, lease, err)) {
            stopHeartbeat();
            fatal("worker ", opts.name, " got an unexpected frame: ",
                  err);
        }
        // Deterministic fault hook: die mid-shard, holding this lease,
        // once the configured number of RESULTs is out the door.
        if (opts.dieAfterResults > 0 &&
            results_sent >= opts.dieAfterResults)
            ::raise(SIGKILL);

        std::vector<ShardRecord> records =
            executor.execute(lease.first, lease.count);
        CampaignSnapshot journal;
        journal.configHash = cfg_hash;
        journal.shards = std::move(records);
        ResultPayload result;
        result.first = lease.first;
        result.count = lease.count;
        result.journal = encodeSnapshot(journal);
        {
            std::lock_guard<std::mutex> lock(write_mutex);
            if (!sendBytes(fd, encodeResult(result))) {
                stopHeartbeat();
                fatal("worker ", opts.name,
                      " lost its coordinator while sending RESULT");
            }
        }
        ++results_sent;
    }
}

// ----- Daemon -------------------------------------------------------
//
// Admission-control design (DESIGN.md §14): a single poll-based
// intake loop owns every not-yet-admitted connection (accept, frame
// assembly, parse, admission verdict), a bounded FIFO-per-tenant
// queue holds admitted requests, and a fixed pool of maxConcurrent
// worker threads drains it under deficit-round-robin across tenants.
// Nothing in the request path spawns a thread, so the daemon's thread
// count is a constant (1 intake + pool), not a function of uptime.

namespace
{

/** Intake-side sends (rejections, status) are tiny; don't let a
 *  wedged client stall the accept loop for the full send deadline. */
constexpr double kIntakeSendDeadlineSec = 5.0;

/** One admitted-but-unstarted request. */
struct QueuedRequest
{
    int fd = -1;
    ServiceRequest req;
    double enqueuedAt = 0.0;
};

/** Per-tenant FIFO plus its deficit-round-robin credit. */
struct TenantQueue
{
    std::deque<QueuedRequest> items;
    long long deficit = 0;
};

/** Single-flight entry: later duplicates of an executing config hash
 *  park their sockets here and receive the leader's response. */
struct InFlightCampaign
{
    std::vector<int> waiters;
};

/** Shared state of one daemon run. */
struct DaemonCtx
{
    std::mutex m;
    std::condition_variable workCv; //!< workers: queue non-empty/stop
    std::condition_variable idleCv; //!< shutdown: quiescence
    const DaemonOptions *opts = nullptr;

    bool draining = false;
    bool stopWorkers = false;

    std::uint64_t served = 0;  //!< requests answered (any verdict)
    std::size_t queued = 0;    //!< admitted, not yet started
    int executing = 0;         //!< popped, not yet answered

    std::map<std::string, TenantQueue> tenants;
    std::vector<std::string> ring; //!< DRR visit order
    std::size_t cursor = 0;

    std::map<std::uint64_t, InFlightCampaign> inflight; //!< by hash

    MetricSet metrics; //!< guarded by m
};

/** DRR cost of a request: proportional to the injection work it
 *  schedules, so heavy tenants drain proportionally slower. */
long long
requestCost(const ServiceRequest &req)
{
    return std::max(1, req.samplesPerCategory);
}

std::string
tenantKey(const ServiceRequest &req)
{
    return req.tenant.empty() ? "default" : req.tenant;
}

/** Under ctx.m: enqueue or report the queue full. */
bool
admitLocked(DaemonCtx &ctx, QueuedRequest &&qr)
{
    if (ctx.queued >=
        static_cast<std::size_t>(ctx.opts->maxQueue))
        return false;
    const std::string tenant = tenantKey(qr.req);
    auto it = ctx.tenants.find(tenant);
    if (it == ctx.tenants.end()) {
        ctx.ring.push_back(tenant);
        it = ctx.tenants.emplace(tenant, TenantQueue{}).first;
    }
    it->second.items.push_back(std::move(qr));
    ctx.queued += 1;
    ctx.metrics.counter("daemon.admitted").add();
    ctx.metrics.counter("daemon.tenant." + tenant + ".admitted")
        .add();
    ctx.metrics
        .histogram("daemon.queue_depth",
                   {0, 1, 2, 4, 8, 16, 32, 64, 128})
        .add(static_cast<double>(ctx.queued));
    return true;
}

/**
 * Under ctx.m, ctx.queued > 0: pop the next request by deficit round
 * robin.  Each sweep visit tops an eligible tenant's credit up by the
 * quantum; a tenant whose head costs more than its credit waits for
 * later visits, so cheap tenants interleave ahead of expensive ones
 * instead of starving behind them.  Idle tenants forfeit their credit
 * (classic DRR), so a burst after silence gets no stored advantage.
 */
QueuedRequest
popLocked(DaemonCtx &ctx, std::string &tenant_out)
{
    for (;;) {
        TenantQueue &tq = ctx.tenants[ctx.ring[ctx.cursor]];
        if (tq.items.empty()) {
            tq.deficit = 0;
            ctx.cursor = (ctx.cursor + 1) % ctx.ring.size();
            continue;
        }
        const long long cost = requestCost(tq.items.front().req);
        if (tq.deficit < cost) {
            tq.deficit += ctx.opts->drrQuantum;
            if (tq.deficit < cost) {
                // Not yet: leave the credit and move on.  Every full
                // sweep adds a quantum, so the head is served after
                // at most ceil(cost / quantum) sweeps.
                ctx.cursor = (ctx.cursor + 1) % ctx.ring.size();
                continue;
            }
        }
        tq.deficit -= cost;
        tenant_out = ctx.ring[ctx.cursor];
        QueuedRequest qr = std::move(tq.items.front());
        tq.items.pop_front();
        if (tq.items.empty())
            tq.deficit = 0;
        ctx.queued -= 1;
        return qr;
    }
}

std::string
campaignResponseJson(const ServiceRequest &req,
                     const CampaignResult &res,
                     const std::string &manifest, double queueWaitSec)
{
    JsonLineBuilder b;
    b.field("status", "ok");
    b.field("network", req.network);
    if (!req.tenant.empty())
        b.field("tenant", req.tenant);
    b.field("config_hash", hexHash(res.configHash));
    b.field("campaign_checksum", hexHash(campaignChecksum(res)));
    b.field("total_injections", res.totalInjections);
    b.field("complete", res.complete);
    b.field("queue_wait_s", queueWaitSec);
    if (!manifest.empty()) {
        std::string trimmed = manifest;
        while (!trimmed.empty() &&
               (trimmed.back() == '\n' || trimmed.back() == '\r'))
            trimmed.pop_back();
        b.rawField("manifest", trimmed);
    }
    return b.str();
}

/** Under ctx.m: the status document answered to {"op": "status"}. */
std::string
daemonStatusJsonLocked(DaemonCtx &ctx)
{
    JsonWriter w;
    w.beginObject();
    w.field("status", "ok");
    w.field("queue_depth", static_cast<std::uint64_t>(ctx.queued));
    w.field("executing", static_cast<std::int64_t>(ctx.executing));
    w.field("workers",
            static_cast<std::int64_t>(ctx.opts->maxConcurrent));
    w.field("max_queue",
            static_cast<std::int64_t>(ctx.opts->maxQueue));
    w.field("draining", ctx.draining);
    w.field("served", ctx.served);
    w.key("metrics");
    ctx.metrics.writeJson(w);
    w.endObject();
    return w.str();
}

/** Is this request JSON the status query {"op": "status"}? */
bool
isStatusRequest(const std::string &request_json)
{
    std::map<std::string, std::string> fields;
    std::string err;
    if (!parseJsonObject(request_json, fields, err))
        return false;
    auto it = fields.find("op");
    return it != fields.end() && it->second == "status" &&
           fields.size() == 1;
}

/**
 * Execute one admitted request on a pool worker.  Everything after
 * the parse runs under a ScopedFatalCapture: a validation failure, a
 * corrupt checkpoint, a manifest I/O error — any fatal() on this
 * thread — answers *this* client with the diagnostic instead of
 * killing the process serving everyone else's campaigns.
 */
void
serveRequest(DaemonCtx &ctx, QueuedRequest item,
             const std::string &tenant, double waitedSec)
{
    const DaemonOptions &opts = *ctx.opts;
    if (opts.testServiceDelaySec > 0.0)
        std::this_thread::sleep_for(
            std::chrono::duration<double>(opts.testServiceDelaySec));

    const double start = nowSec();
    std::string response;
    std::string error;
    bool leader = false;
    std::uint64_t cfg_hash = 0;
    try {
        ScopedFatalCapture capture;
        Network net = buildServiceNetwork(item.req);
        Tensor input = serviceInput(item.req);
        CampaignConfig cfg = campaignConfigFor(item.req);
        cfg_hash = campaignConfigHash(net, input, cfg);

        {
            // Single-flight per config hash: two concurrent identical
            // submissions would race on the same checkpoint and
            // manifest paths under --state-dir.  The second parks its
            // socket on the first and receives the same response —
            // the campaign is deterministic, so that *is* its answer.
            std::lock_guard<std::mutex> lock(ctx.m);
            auto [it, inserted] =
                ctx.inflight.try_emplace(cfg_hash);
            if (!inserted) {
                it->second.waiters.push_back(item.fd);
                ctx.metrics.counter("daemon.dedup_joined").add();
                return;
            }
            leader = true;
        }

        std::string manifest_path;
        if (!opts.stateDir.empty()) {
            // Hash-keyed state: a restarted daemon resumes every
            // campaign from its last checkpoint window (resumeFrom of
            // a missing file starts fresh, so first runs need no
            // special case).
            const std::string stem =
                opts.stateDir + "/campaign-" + hexHash(cfg_hash);
            cfg.checkpointPath = stem + ".fidckpt";
            cfg.resumeFrom = cfg.checkpointPath;
            cfg.checkpointEverySec = opts.checkpointEverySec;
            manifest_path = stem + ".manifest.json";
            cfg.reportPath = manifest_path;
        }
        auto svc_metrics = std::make_shared<MetricSet>();
        svc_metrics->timer("daemon.queue_wait")
            .addNs(static_cast<std::int64_t>(waitedSec * 1e9));
        cfg.serviceMetrics = svc_metrics;
        CampaignResult res =
            runCampaign(net, input, serviceMetric(item.req), cfg);
        const std::string manifest =
            manifest_path.empty() ? std::string()
                                  : readWholeFile(manifest_path);
        response = campaignResponseJson(item.req, res, manifest,
                                        waitedSec);
    } catch (const FatalError &e) {
        error = e.what();
        warn("campaign request failed: ", error);
    }

    // Deliver to this client plus every single-flight joiner —
    // success and failure alike (a duplicate of a failing request
    // would fail the same way).
    std::vector<int> fds{item.fd};
    if (leader) {
        std::lock_guard<std::mutex> lock(ctx.m);
        auto it = ctx.inflight.find(cfg_hash);
        fds.insert(fds.end(), it->second.waiters.begin(),
                   it->second.waiters.end());
        ctx.inflight.erase(it);
    }
    const std::string frame = error.empty()
                                  ? encodeResponse(response)
                                  : encodeErrorFrame(error);
    std::uint64_t send_failures = 0;
    for (int fd : fds) {
        if (!sendBytesWithDeadline(fd, frame, opts.sendDeadlineSec))
            ++send_failures;
        ::close(fd);
    }

    std::lock_guard<std::mutex> lock(ctx.m);
    ctx.served += fds.size();
    ctx.metrics
        .counter(error.empty() ? "daemon.responses_ok"
                               : "daemon.responses_error")
        .add(fds.size());
    if (send_failures > 0)
        ctx.metrics.counter("daemon.send_failures").add(send_failures);
    ctx.metrics.timer("daemon.tenant." + tenant + ".service")
        .addNs(static_cast<std::int64_t>((nowSec() - start) * 1e9));
}

/** One pool worker: pop by DRR, execute, answer, repeat. */
void
daemonWorker(DaemonCtx &ctx)
{
    for (;;) {
        QueuedRequest item;
        std::string tenant;
        double waited = 0.0;
        {
            std::unique_lock<std::mutex> lock(ctx.m);
            ctx.workCv.wait(lock, [&] {
                return ctx.stopWorkers || ctx.queued > 0;
            });
            if (ctx.queued == 0)
                return; // stopWorkers, queue fully drained
            item = popLocked(ctx, tenant);
            ctx.executing += 1;
            waited = nowSec() - item.enqueuedAt;
            ctx.metrics.timer("daemon.queue_wait")
                .addNs(static_cast<std::int64_t>(waited * 1e9));
            ctx.metrics.timer("daemon.tenant." + tenant + ".wait")
                .addNs(static_cast<std::int64_t>(waited * 1e9));
        }
        serveRequest(ctx, std::move(item), tenant, waited);
        {
            std::lock_guard<std::mutex> lock(ctx.m);
            ctx.executing -= 1;
        }
        ctx.idleCv.notify_all();
    }
}

/** Reject every queued-but-unstarted request with the draining
 *  status (DRAIN semantics: admitted is not a promise to execute
 *  once shutdown begins — pinned by the drain tests). */
void
rejectQueuedForDrain(DaemonCtx &ctx)
{
    std::vector<QueuedRequest> evicted;
    {
        std::lock_guard<std::mutex> lock(ctx.m);
        for (auto &[tenant, tq] : ctx.tenants) {
            for (QueuedRequest &qr : tq.items)
                evicted.push_back(std::move(qr));
            tq.items.clear();
            tq.deficit = 0;
        }
        ctx.queued = 0;
        ctx.served += evicted.size();
        ctx.metrics.counter("daemon.rejected_draining")
            .add(evicted.size());
    }
    const std::string frame = encodeDrainingError();
    for (QueuedRequest &qr : evicted) {
        sendBytesWithDeadline(qr.fd, frame, kIntakeSendDeadlineSec);
        ::close(qr.fd);
    }
}

/** One not-yet-admitted connection owned by the intake loop. */
struct PendingConn
{
    int fd = -1;
    std::string buf;
    double deadline = 0.0;
};

} // namespace

int
runServiceDaemon(const DaemonOptions &opts)
{
    fatal_if(opts.maxConcurrent < 1,
             "daemon maxConcurrent must be >= 1, got ",
             opts.maxConcurrent);
    fatal_if(opts.maxQueue < 1, "daemon maxQueue must be >= 1, got ",
             opts.maxQueue);
    fatal_if(opts.drrQuantum < 1,
             "daemon drrQuantum must be >= 1, got ", opts.drrQuantum);
    if (!opts.stateDir.empty()) {
        // The checkpoint writer fatals on a missing directory, which
        // would kill the daemon mid-campaign — create the state dir
        // up front (parents included) and fail fast if we cannot.
        std::string partial;
        for (std::size_t at = 0; at < opts.stateDir.size();) {
            std::size_t sep = opts.stateDir.find('/', at);
            if (sep == std::string::npos)
                sep = opts.stateDir.size();
            partial = opts.stateDir.substr(0, sep);
            at = sep + 1;
            if (partial.empty())
                continue; // leading '/'
            if (::mkdir(partial.c_str(), 0777) != 0 &&
                errno != EEXIST)
                fatal("daemon cannot create state dir ", partial,
                      ": ", std::strerror(errno));
        }
    }
    DaemonCtx ctx;
    ctx.opts = &opts;

    const ServiceAddr addr = parseServiceAddr(opts.listenAddr);
    int listen_fd = listenOn(addr);
    inform("fidelity_service daemon listening on ", opts.listenAddr,
           " (", opts.maxConcurrent, " workers, queue of ",
           opts.maxQueue, ")");

    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(opts.maxConcurrent));
    for (int i = 0; i < opts.maxConcurrent; ++i)
        pool.emplace_back(daemonWorker, std::ref(ctx));

    // Intake event loop: every connection lives here — poll-driven
    // frame assembly with a receive deadline — until its request is
    // answered inline (malformed/busy/status/drain) or admitted to
    // the queue.  No thread is ever spawned per connection.
    std::vector<PendingConn> pending;

    // Answer-and-close for intake verdicts; counts toward served.
    auto answer = [&](int fd, const std::string &frame,
                      const char *counter) {
        sendBytesWithDeadline(fd, frame, kIntakeSendDeadlineSec);
        ::close(fd);
        std::lock_guard<std::mutex> lock(ctx.m);
        ctx.served += 1;
        ctx.metrics.counter(counter).add();
    };

    // Dispatch one complete frame from a connection.  The fd's
    // ownership moves out of `pending` either way.
    auto dispatch = [&](int fd, const Frame &f) {
        std::string err;
        if (f.type == FrameType::Drain) {
            {
                std::lock_guard<std::mutex> lock(ctx.m);
                ctx.draining = true;
            }
            rejectQueuedForDrain(ctx);
            answer(fd, encodeResponse("{\"status\": \"draining\"}"),
                   "daemon.drains");
            return;
        }
        std::string request_json;
        if (!tryParseText(f, FrameType::Request, request_json, err)) {
            answer(fd, encodeErrorFrame(err),
                   "daemon.rejected_malformed");
            return;
        }
        if (isStatusRequest(request_json)) {
            std::string status;
            {
                std::lock_guard<std::mutex> lock(ctx.m);
                status = daemonStatusJsonLocked(ctx);
            }
            sendBytesWithDeadline(fd, encodeResponse(status),
                                  kIntakeSendDeadlineSec);
            ::close(fd);
            return; // observability; not a served campaign request
        }
        QueuedRequest qr;
        if (!tryParseServiceRequest(request_json, qr.req, err)) {
            warn("rejecting campaign request: ", err);
            answer(fd, encodeErrorFrame(err),
                   "daemon.rejected_malformed");
            return;
        }
        qr.fd = fd;
        qr.enqueuedAt = nowSec();
        bool admitted = false;
        std::size_t depth = 0;
        {
            std::lock_guard<std::mutex> lock(ctx.m);
            depth = ctx.queued;
            admitted = admitLocked(ctx, std::move(qr));
        }
        if (!admitted) {
            answer(fd,
                   encodeBusyError(
                       depth,
                       static_cast<std::uint64_t>(opts.maxQueue)),
                   "daemon.rejected_busy");
            return;
        }
        ctx.workCv.notify_one();
    };

    for (;;) {
        {
            std::lock_guard<std::mutex> lock(ctx.m);
            if (ctx.draining ||
                (opts.maxRequests > 0 &&
                 ctx.served >= opts.maxRequests))
                break;
        }
        std::vector<pollfd> pfds;
        pfds.reserve(pending.size() + 1);
        pfds.push_back(pollfd{listen_fd, POLLIN, 0});
        for (const PendingConn &pc : pending)
            pfds.push_back(pollfd{pc.fd, POLLIN, 0});
        int rc = ::poll(pfds.data(),
                        static_cast<nfds_t>(pfds.size()), 200);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            fatal("daemon poll failed: ", std::strerror(errno));
        }
        const double now = nowSec();
        if (pfds[0].revents & POLLIN) {
            int fd = ::accept(listen_fd, nullptr, nullptr);
            if (fd >= 0) {
                pending.push_back(PendingConn{
                    fd, {}, now + opts.recvDeadlineSec});
                std::lock_guard<std::mutex> lock(ctx.m);
                ctx.metrics.counter("daemon.accepted").add();
            }
        }
        // Walk the snapshot the pollfds were built from; entries
        // accepted above sit past it and wait for the next round.
        const std::size_t polled = pfds.size() - 1;
        std::vector<PendingConn> keep;
        keep.reserve(pending.size());
        for (std::size_t i = 0; i < pending.size(); ++i) {
            PendingConn &pc = pending[i];
            const short revents =
                i < polled ? pfds[i + 1].revents : 0;
            if (revents & (POLLERR | POLLNVAL)) {
                ::close(pc.fd);
                continue;
            }
            if (revents & (POLLIN | POLLHUP)) {
                char chunk[16384];
                const ssize_t n = ::recv(pc.fd, chunk, sizeof(chunk),
                                         MSG_DONTWAIT);
                if (n == 0) {
                    ::close(pc.fd); // client went away silently
                    continue;
                }
                if (n > 0)
                    pc.buf.append(chunk,
                                  static_cast<std::size_t>(n));
                else if (errno != EAGAIN && errno != EWOULDBLOCK &&
                         errno != EINTR) {
                    ::close(pc.fd);
                    continue;
                }
                Frame f;
                std::size_t consumed = 0;
                std::string err;
                switch (tryDecodeFrame(pc.buf, f, consumed, err)) {
                case FrameDecodeStatus::Complete:
                    dispatch(pc.fd, f);
                    continue; // fd ownership moved
                case FrameDecodeStatus::Malformed:
                    answer(pc.fd, encodeErrorFrame(err),
                           "daemon.rejected_malformed");
                    continue;
                case FrameDecodeStatus::NeedMore:
                    break;
                }
            }
            if (pc.deadline < now) {
                // Slow loris: a connection that cannot deliver one
                // frame within the receive deadline is shed, not
                // allowed to hold intake state forever.
                sendBytesWithDeadline(
                    pc.fd,
                    encodeErrorFrame("request frame not received "
                                     "within the deadline"),
                    1.0);
                ::close(pc.fd);
                std::lock_guard<std::mutex> lock(ctx.m);
                ctx.metrics.counter("daemon.intake_timeouts").add();
                continue;
            }
            keep.push_back(std::move(pc));
        }
        pending.swap(keep);
    }

    // Shutdown: close half-read intake connections, reject queued
    // requests if draining (maxRequests exits let the pool finish the
    // queue), wait for quiescence, then stop and join the pool.
    for (PendingConn &pc : pending) {
        sendBytesWithDeadline(pc.fd, encodeDrainingError(), 1.0);
        ::close(pc.fd);
    }
    pending.clear();
    bool drain_queue = false;
    {
        std::lock_guard<std::mutex> lock(ctx.m);
        drain_queue = ctx.draining;
    }
    if (drain_queue)
        rejectQueuedForDrain(ctx);
    {
        std::unique_lock<std::mutex> lock(ctx.m);
        ctx.idleCv.wait(lock, [&] {
            return ctx.queued == 0 && ctx.executing == 0 &&
                   ctx.inflight.empty();
        });
        ctx.stopWorkers = true;
    }
    ctx.workCv.notify_all();
    for (std::thread &t : pool)
        t.join();
    ::close(listen_fd);
    if (addr.unixSocket)
        ::unlink(addr.path.c_str());
    inform("fidelity_service daemon drained after ", ctx.served,
           " request(s)");
    return 0;
}

bool
submitServiceRequest(const std::string &connectAddr,
                     const std::string &requestJson, bool drain,
                     std::string &response, std::string &err)
{
    const ServiceAddr addr = parseServiceAddr(connectAddr);
    int fd = connectOnce(addr);
    if (fd < 0) {
        err = describe("cannot connect to ", connectAddr, ": ",
                       std::strerror(errno));
        return false;
    }
    const std::string frame =
        drain ? encodeDrain() : encodeRequest(requestJson);
    if (!sendBytes(fd, frame)) {
        ::close(fd);
        err = describe("cannot send to ", connectAddr);
        return false;
    }
    FrameConn conn(fd);
    Frame f;
    FrameConn::Status st = conn.readFrame(f, 600.0, err);
    if (st != FrameConn::Status::Frame) {
        ::close(fd);
        if (err.empty())
            err = "no response from the daemon";
        return false;
    }
    ::close(fd);
    if (f.type == FrameType::Error) {
        std::string message;
        std::string parse_err;
        if (!tryParseText(f, FrameType::Error, message, parse_err))
            message = parse_err;
        err = message;
        return false;
    }
    return tryParseText(f, FrameType::Response, response, err);
}

bool
queryServiceStatus(const std::string &connectAddr,
                   std::string &response, std::string &err)
{
    return submitServiceRequest(connectAddr, "{\"op\": \"status\"}",
                                false, response, err);
}

#endif // !defined(_WIN32)

} // namespace fidelity
