#include "sim/result_cache.hh"

namespace fidelity
{

namespace
{

// Data-word layout.  Bit 0 marks a live entry so fingerprint 0 with a
// default outcome still differs from an empty slot; bits [8,16) hold
// the generation stamp; bits [16,64) hold the top fingerprint bits as
// a second integrity tag on top of the XOR check.
constexpr std::uint64_t kValidBit = 1ull << 0;
constexpr std::uint64_t kMaskedBit = 1ull << 1;
constexpr std::uint64_t kEarlyExitBit = 1ull << 2;
constexpr unsigned kGenerationShift = 8;
constexpr std::uint64_t kGenerationMask = 0xffull << kGenerationShift;
constexpr unsigned kTagShift = 16;

std::uint64_t packData(std::uint64_t fingerprint, CachedOutcome out, std::uint32_t generation)
{
    std::uint64_t data = kValidBit;
    if (out.masked)
        data |= kMaskedBit;
    if (out.earlyExit)
        data |= kEarlyExitBit;
    data |= (std::uint64_t{generation} & 0xff) << kGenerationShift;
    data |= (fingerprint >> kTagShift) << kTagShift;
    return data;
}

bool dataMatches(std::uint64_t fingerprint, std::uint64_t data)
{
    if (!(data & kValidBit))
        return false;
    return (data >> kTagShift) == (fingerprint >> kTagShift);
}

// splitmix64 finaliser: fingerprints are already well mixed, but the
// bucket index must not reuse the same bits as the embedded tag, and
// deliberately crafted colliding keys (the adversarial tests) should
// still spread across shards.
std::uint64_t mixIndex(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

std::size_t floorPow2(std::size_t v)
{
    std::size_t p = 1;
    while (p * 2 <= v)
        p *= 2;
    return p;
}

} // namespace

ResultCache::ResultCache(std::size_t capacity_bytes)
{
    const std::size_t cluster_bytes = kClusterEntries * kEntryBytes;
    std::size_t clusters = capacity_bytes / (kShards * cluster_bytes);
    clustersPerShard_ = clusters == 0 ? 1 : floorPow2(clusters);
    entries_ = std::make_unique<Entry[]>(kShards * clustersPerShard_ * kClusterEntries);
    stats_ = std::make_unique<ShardStats[]>(kShards);
}

ResultCache::Entry *ResultCache::cluster(std::uint64_t fingerprint, std::size_t &shard)
{
    const std::uint64_t mixed = mixIndex(fingerprint);
    shard = static_cast<std::size_t>(mixed & (kShards - 1));
    const std::size_t cluster_idx = static_cast<std::size_t>((mixed / kShards) & (clustersPerShard_ - 1));
    return entries_.get() + (shard * clustersPerShard_ + cluster_idx) * kClusterEntries;
}

bool ResultCache::probe(std::uint64_t fingerprint, CachedOutcome &out)
{
    std::size_t shard = 0;
    Entry *c = cluster(fingerprint, shard);
    for (std::size_t i = 0; i < kClusterEntries; ++i)
    {
        const std::uint64_t xkey = c[i].xkey.load(std::memory_order_relaxed);
        const std::uint64_t data = c[i].data.load(std::memory_order_relaxed);
        // Both checks must pass: the XOR couples the two words (a torn
        // read fails it), the tag couples the data word to the probed
        // fingerprint.  Either alone would admit a wrong outcome under
        // a race; together a false hit needs a ~2^-112 coincidence.
        if ((xkey ^ data) == fingerprint && dataMatches(fingerprint, data))
        {
            out.masked = (data & kMaskedBit) != 0;
            out.earlyExit = (data & kEarlyExitBit) != 0;
            stats_[shard].hits.fetch_add(1, std::memory_order_relaxed);
            return true;
        }
    }
    stats_[shard].misses.fetch_add(1, std::memory_order_relaxed);
    return false;
}

void ResultCache::store(std::uint64_t fingerprint, CachedOutcome out)
{
    std::size_t shard = 0;
    Entry *c = cluster(fingerprint, shard);
    const std::uint32_t generation = generation_.load(std::memory_order_relaxed);
    const std::uint64_t data = packData(fingerprint, out, generation);

    // Victim preference: refresh the same fingerprint, else take an
    // empty slot, else displace the oldest-generation entry (lowest
    // index on ties, so replaying the same sequence single-threaded
    // reproduces the same placements).
    std::size_t victim = 0;
    int victim_age = -1;
    bool victim_live = true;
    for (std::size_t i = 0; i < kClusterEntries; ++i)
    {
        const std::uint64_t xkey = c[i].xkey.load(std::memory_order_relaxed);
        const std::uint64_t d = c[i].data.load(std::memory_order_relaxed);
        if ((xkey ^ d) == fingerprint && dataMatches(fingerprint, d))
        {
            victim = i;
            victim_live = false; // refresh, not an eviction
            break;
        }
        if (!(d & kValidBit))
        {
            if (victim_live)
            {
                victim = i;
                victim_age = -1;
                victim_live = false;
            }
            continue;
        }
        // Age = how many generations behind the current one; wraps
        // mod 256 like the stamp itself.
        const std::uint32_t entry_gen = static_cast<std::uint32_t>((d & kGenerationMask) >> kGenerationShift);
        const int age = static_cast<int>((generation - entry_gen) & 0xff);
        if (victim_live && age > victim_age)
        {
            victim = i;
            victim_age = age;
        }
    }
    if (victim_live)
        stats_[shard].evictions.fetch_add(1, std::memory_order_relaxed);
    stats_[shard].stores.fetch_add(1, std::memory_order_relaxed);
    c[victim].data.store(data, std::memory_order_relaxed);
    c[victim].xkey.store(fingerprint ^ data, std::memory_order_relaxed);
}

void ResultCache::newGeneration()
{
    generation_.fetch_add(1, std::memory_order_relaxed);
}

ResultCacheStats ResultCache::stats() const
{
    ResultCacheStats s;
    for (std::size_t i = 0; i < kShards; ++i)
    {
        s.hits += stats_[i].hits.load(std::memory_order_relaxed);
        s.misses += stats_[i].misses.load(std::memory_order_relaxed);
        s.stores += stats_[i].stores.load(std::memory_order_relaxed);
        s.evictions += stats_[i].evictions.load(std::memory_order_relaxed);
    }
    return s;
}

std::size_t ResultCache::entryCount() const
{
    return kShards * clustersPerShard_ * kClusterEntries;
}

} // namespace fidelity
