/**
 * @file
 * Status/error reporting helpers in the spirit of gem5's logging.hh.
 *
 * panic()  — an internal invariant was violated (a framework bug); aborts.
 * fatal()  — the user supplied an impossible configuration; exits cleanly.
 * warn()   — something is suspicious but execution can continue.
 * inform() — plain status output.
 */

#ifndef FIDELITY_SIM_LOGGING_HH
#define FIDELITY_SIM_LOGGING_HH

#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <string>

namespace fidelity
{

/**
 * What fatal() raises on a thread holding a ScopedFatalCapture
 * instead of exiting the process.  Long-running servers (the campaign
 * daemon) wrap per-request work in a capture scope so a request that
 * reaches a fatal() — an invalid configuration, a corrupt checkpoint
 * — costs that one request an error response, not everyone else
 * their process.
 */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg)
    {
    }
};

/**
 * RAII scope that redirects fatal() on the *current thread* into a
 * thrown FatalError.  Scopes nest; panic() is never captured (a
 * framework bug still aborts).  Capture is thread-local on purpose:
 * work handed to other threads (e.g. a ThreadPool) is not covered —
 * only validation and I/O on the capturing thread is.
 */
class ScopedFatalCapture
{
  public:
    ScopedFatalCapture();
    ~ScopedFatalCapture();

    ScopedFatalCapture(const ScopedFatalCapture &) = delete;
    ScopedFatalCapture &operator=(const ScopedFatalCapture &) = delete;

    /** True when the calling thread is inside a capture scope. */
    static bool active();
};

/** Terminate with a framework-bug diagnostic (calls std::abort). */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/** Terminate with a user-error diagnostic (calls std::exit(1)), or
 *  throw FatalError when the calling thread holds a
 *  ScopedFatalCapture. */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

/** Print a warning to stderr. */
void warnImpl(const std::string &msg);

/** Print a status message to stdout. */
void informImpl(const std::string &msg);

namespace detail
{

/** Concatenate a heterogeneous argument pack into one message string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace detail

} // namespace fidelity

#define panic(...) \
    ::fidelity::panicImpl(__FILE__, __LINE__, \
                          ::fidelity::detail::concat(__VA_ARGS__))

#define fatal(...) \
    ::fidelity::fatalImpl(__FILE__, __LINE__, \
                          ::fidelity::detail::concat(__VA_ARGS__))

#define warn(...) \
    ::fidelity::warnImpl(::fidelity::detail::concat(__VA_ARGS__))

#define inform(...) \
    ::fidelity::informImpl(::fidelity::detail::concat(__VA_ARGS__))

/** Panic unless a framework invariant holds. */
#define panic_if(cond, ...) \
    do { \
        if (cond) \
            panic(__VA_ARGS__); \
    } while (0)

/** Fatal unless a user-facing precondition holds. */
#define fatal_if(cond, ...) \
    do { \
        if (cond) \
            fatal(__VA_ARGS__); \
    } while (0)

#endif // FIDELITY_SIM_LOGGING_HH
