#include "sim/metrics.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace fidelity
{

Histogram::Histogram(std::vector<double> edges)
    : edges_(std::move(edges)), counts_(edges_.size() + 1, 0)
{
    fatal_if(edges_.empty(), "histogram requires at least one edge");
    fatal_if(!std::is_sorted(edges_.begin(), edges_.end()) ||
                 std::adjacent_find(edges_.begin(), edges_.end()) !=
                     edges_.end(),
             "histogram edges must be strictly increasing");
}

void
Histogram::add(double v)
{
    auto it = std::lower_bound(edges_.begin(), edges_.end(), v);
    counts_[static_cast<std::size_t>(it - edges_.begin())] += 1;
    total_ += 1;
}

void
Histogram::mergeFrom(const Histogram &other)
{
    fatal_if(edges_ != other.edges_,
             "merging histograms with different edges");
    for (std::size_t i = 0; i < counts_.size(); ++i)
        counts_[i] += other.counts_[i];
    total_ += other.total_;
}

Counter &
MetricSet::counter(const std::string &name)
{
    return counters_[name];
}

Timer &
MetricSet::timer(const std::string &name)
{
    return timers_[name];
}

Histogram &
MetricSet::histogram(const std::string &name,
                     const std::vector<double> &edges)
{
    auto it = histograms_.find(name);
    if (it == histograms_.end())
        it = histograms_.emplace(name, Histogram(edges)).first;
    else
        fatal_if(it->second.edges() != edges, "histogram ", name,
                 " requested with different edges than it was created "
                 "with");
    return it->second;
}

void
MetricSet::mergeFrom(const MetricSet &other)
{
    for (const auto &[name, c] : other.counters_)
        counters_[name].add(c.count());
    for (const auto &[name, t] : other.timers_)
        timers_[name].mergeFrom(t);
    for (const auto &[name, h] : other.histograms_) {
        auto it = histograms_.find(name);
        if (it == histograms_.end())
            histograms_.emplace(name, h);
        else
            it->second.mergeFrom(h);
    }
}

bool
MetricSet::empty() const
{
    return counters_.empty() && timers_.empty() && histograms_.empty();
}

void
MetricSet::writeJson(JsonWriter &w) const
{
    // One flat object, keys sorted.  The three maps are each sorted;
    // emit a three-way merge so mixed kinds interleave by name.
    w.beginObject();
    auto c = counters_.begin();
    auto t = timers_.begin();
    auto h = histograms_.begin();
    auto next_key = [&]() -> const std::string * {
        const std::string *best = nullptr;
        if (c != counters_.end())
            best = &c->first;
        if (t != timers_.end() && (!best || t->first < *best))
            best = &t->first;
        if (h != histograms_.end() && (!best || h->first < *best))
            best = &h->first;
        return best;
    };
    while (const std::string *k = next_key()) {
        if (c != counters_.end() && &c->first == k) {
            w.field(*k, c->second.count());
            ++c;
        } else if (t != timers_.end() && &t->first == k) {
            w.field(*k + "_s", t->second.seconds());
            w.field(*k + "_spans", t->second.spans());
            ++t;
        } else {
            w.key(*k);
            w.beginObject();
            w.key("edges");
            w.beginArray();
            for (double e : h->second.edges())
                w.value(e);
            w.endArray();
            w.key("counts");
            w.beginArray();
            for (std::uint64_t n : h->second.counts())
                w.value(n);
            w.endArray();
            w.field("total", h->second.total());
            w.endObject();
            ++h;
        }
    }
    w.endObject();
}

} // namespace fidelity
