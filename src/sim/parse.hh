/**
 * @file
 * Checked numeric parsing for command-line arguments.
 *
 * atoi/atof silently turn garbage into 0 and saturate on overflow
 * without any indication; a mistyped `threads=abc` then runs a
 * single-threaded campaign instead of failing.  These helpers parse
 * the full string or exit through fatal() naming the offending
 * argument, so CLI tools get uniform, loud diagnostics.
 */

#ifndef FIDELITY_SIM_PARSE_HH
#define FIDELITY_SIM_PARSE_HH

#include <string>

namespace fidelity
{

/**
 * Parse `text` as a decimal integer in [min_value, max_value].
 * Leading/trailing whitespace, partial parses ("12abc"), empty input,
 * and out-of-range values all exit through fatal() citing `what` (the
 * argument's name as shown in the usage string).
 */
long long parseIntArg(const std::string &what, const std::string &text,
                      long long min_value, long long max_value);

/**
 * Parse `text` as a finite double in [min_value, max_value]; same
 * error discipline as parseIntArg.  "nan"/"inf" are rejected — no CLI
 * knob in this codebase meaningfully accepts them.
 */
double parseDoubleArg(const std::string &what, const std::string &text,
                      double min_value, double max_value);

} // namespace fidelity

#endif // FIDELITY_SIM_PARSE_HH
