/**
 * @file
 * Checked parsing for command-line arguments and service requests.
 *
 * atoi/atof silently turn garbage into 0 and saturate on overflow
 * without any indication; a mistyped `threads=abc` then runs a
 * single-threaded campaign instead of failing.  These helpers parse
 * the full string or report precisely what was wrong, naming the
 * offending argument.
 *
 * Two error disciplines share one implementation:
 *
 *  - parseIntArg/parseDoubleArg exit through fatal() — right for CLI
 *    tools, where the process belongs to the mistyped invocation.
 *  - tryParseInt/tryParseDouble/parseJsonObject return false + a
 *    diagnostic — right for the campaign service daemon, where a
 *    malformed request must turn into an error *response*, never kill
 *    the process serving everyone else's campaigns.
 */

#ifndef FIDELITY_SIM_PARSE_HH
#define FIDELITY_SIM_PARSE_HH

#include <map>
#include <string>

namespace fidelity
{

/**
 * Parse `text` as a decimal integer in [min_value, max_value].
 * Leading/trailing whitespace, partial parses ("12abc"), empty input,
 * and out-of-range values all exit through fatal() citing `what` (the
 * argument's name as shown in the usage string).
 */
long long parseIntArg(const std::string &what, const std::string &text,
                      long long min_value, long long max_value);

/**
 * Parse `text` as a finite double in [min_value, max_value]; same
 * error discipline as parseIntArg.  "nan"/"inf" are rejected — no CLI
 * knob in this codebase meaningfully accepts them.
 */
double parseDoubleArg(const std::string &what, const std::string &text,
                      double min_value, double max_value);

/**
 * Non-fatal twin of parseIntArg: on success writes `out` and returns
 * true; on failure returns false with the diagnostic (citing `what`)
 * in `err` and `out` untouched.
 */
bool tryParseInt(const std::string &what, const std::string &text,
                 long long min_value, long long max_value,
                 long long &out, std::string &err);

/** Non-fatal twin of parseDoubleArg. */
bool tryParseDouble(const std::string &what, const std::string &text,
                    double min_value, double max_value, double &out,
                    std::string &err);

/**
 * Parse a flat JSON object — the shape of every campaign service
 * request — into key → raw-value-token pairs.
 *
 * Accepted values are strings (returned unescaped), numbers, `true`,
 * `false`, and `null` (all returned as their literal token text);
 * nested objects and arrays are rejected (no service request needs
 * them, and rejecting them keeps the daemon's attack surface a single
 * screen of code).  Duplicate keys, trailing garbage, unterminated
 * strings, and bad escapes are all reported in `err` rather than
 * guessed at.  Returns false with `fields` cleared on any error —
 * the daemon turns that into an error response, never a fatal().
 */
bool parseJsonObject(const std::string &text,
                     std::map<std::string, std::string> &fields,
                     std::string &err);

} // namespace fidelity

#endif // FIDELITY_SIM_PARSE_HH
