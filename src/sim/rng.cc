#include "sim/rng.hh"

#include <cmath>

#include "sim/logging.hh"

namespace fidelity
{

namespace
{

constexpr std::uint64_t pcgMult = 6364136223846793005ULL;
constexpr std::uint64_t pcgInc = 1442695040888963407ULL;

} // namespace

Rng::Rng(std::uint64_t seed)
{
    // Standard PCG32 seeding: advance once around the seed so that
    // nearby seeds diverge immediately.
    state_ = 0;
    next32();
    state_ += seed;
    next32();
}

std::uint32_t
Rng::next32()
{
    std::uint64_t old = state_;
    state_ = old * pcgMult + pcgInc;
    auto xorshifted =
        static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
    auto rot = static_cast<std::uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32 - rot) & 31));
}

std::uint64_t
Rng::next64()
{
    return (static_cast<std::uint64_t>(next32()) << 32) | next32();
}

std::uint32_t
Rng::below(std::uint32_t bound)
{
    panic_if(bound == 0, "Rng::below requires bound > 0");
    // Lemire-style rejection to remove modulo bias.
    std::uint32_t threshold = (-bound) % bound;
    for (;;) {
        std::uint32_t r = next32();
        if (r >= threshold)
            return r % bound;
    }
}

std::int64_t
Rng::range(std::int64_t lo, std::int64_t hi)
{
    panic_if(lo > hi, "Rng::range requires lo <= hi");
    auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) // full 64-bit span
        return static_cast<std::int64_t>(next64());
    // 64-bit rejection sampling.
    std::uint64_t threshold = (-span) % span;
    for (;;) {
        std::uint64_t r = next64();
        if (r >= threshold)
            return lo + static_cast<std::int64_t>(r % span);
    }
}

double
Rng::uniform()
{
    // 53 random bits into [0, 1).
    return static_cast<double>(next64() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

double
Rng::normal()
{
    if (haveCachedNormal_) {
        haveCachedNormal_ = false;
        return cachedNormal_;
    }
    double u1, u2;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    u2 = uniform();
    double mag = std::sqrt(-2.0 * std::log(u1));
    cachedNormal_ = mag * std::sin(2.0 * M_PI * u2);
    haveCachedNormal_ = true;
    return mag * std::cos(2.0 * M_PI * u2);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

bool
Rng::chance(double p)
{
    return uniform() < p;
}

std::size_t
Rng::weighted(const std::vector<double> &weights)
{
    double total = 0.0;
    for (double w : weights) {
        panic_if(w < 0.0, "Rng::weighted requires non-negative weights");
        total += w;
    }
    panic_if(total <= 0.0, "Rng::weighted requires a positive weight sum");
    double r = uniform() * total;
    double acc = 0.0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        acc += weights[i];
        if (r < acc)
            return i;
    }
    return weights.size() - 1;
}

void
Rng::panicIfEmptyPick(std::uint64_t n)
{
    panic_if(n == 0, "Rng::pick on an empty container");
}

Rng
Rng::fork()
{
    return Rng(next64());
}

} // namespace fidelity
