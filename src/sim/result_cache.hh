/**
 * @file
 * Cross-campaign injection result cache (fault-site memo table).
 *
 * Many fault sites are architecturally equivalent: the same layer, the
 * same fault category, the same corrupted neurons with the same
 * perturbed values, propagating through the same golden state.  Such
 * injections provably produce the same outcome, yet a campaign pays a
 * full (incremental) forward pass for each of them — and adaptive
 * rounds plus repeated service-style requests re-sample the same
 * (layer, category) cells constantly.  This module memoises the
 * expensive part: keyed by a 64-bit fault-site fingerprint (see
 * core/injector.hh, faultSiteFingerprint), it records the outcome of
 * an evaluated injection so an equivalent later one can skip the
 * forward pass entirely.
 *
 * The design is the transposition-table discipline of game-tree
 * searchers (probe → compute → store), adapted to a campaign fan-out:
 *
 *  - Fixed capacity, power-of-two geometry: a bucket array of 16-byte
 *    packed entries grouped into 4-entry clusters, split into
 *    independent shards so the statistics counters of concurrent
 *    workers never contend on one cache line.
 *  - Lock-free relaxed-atomic 2-word publish: each entry stores
 *    (fingerprint XOR data, data).  A probe recomputes the XOR and
 *    additionally checks the fingerprint tag embedded in the data
 *    word, so a torn read — data from one store, key from another —
 *    fails the check and misses.  A torn read can cost a recompute,
 *    never return a wrong outcome.
 *  - Generation-based eviction: stores stamp the table's current
 *    generation into the entry; a full cluster evicts its oldest-
 *    generation entry first (ties broken by lowest slot index, so a
 *    single-threaded replay of the same probe/store sequence is
 *    deterministic).  Campaigns bump the generation once at start, so
 *    a long-lived shared table ages out entries of old requests under
 *    pressure while still serving them on a hit.
 *
 * Semantic transparency is the caller's contract: the cache returns
 * recorded outcomes only for equal fingerprints, and the fingerprint
 * (not this module) must be sound — see DESIGN.md §11 for the
 * soundness argument.
 */

#ifndef FIDELITY_SIM_RESULT_CACHE_HH
#define FIDELITY_SIM_RESULT_CACHE_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

namespace fidelity
{

/** Aggregated probe/store counters of a ResultCache. */
struct ResultCacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t stores = 0;
    std::uint64_t evictions = 0; //!< stores that displaced a live entry
};

/** Memoised outcome of one fault-injection experiment. */
struct CachedOutcome
{
    bool masked = false;
    bool earlyExit = false;
};

/** Lock-free, sharded fault-site memo table. */
class ResultCache
{
  public:
    /** Bytes of one packed entry (two 64-bit words). */
    static constexpr std::size_t kEntryBytes = 16;

    /** Entries scanned per bucket (one probe/store touches one
     *  cluster: two cache lines). */
    static constexpr std::size_t kClusterEntries = 4;

    /** Independent shards (statistics isolation + index striping). */
    static constexpr std::size_t kShards = 16;

    /**
     * Build a table of at most `capacity_bytes` of entry storage.  The
     * per-shard cluster count is rounded down to a power of two; the
     * floor is one cluster per shard (kShards * kClusterEntries
     * entries), so even a deliberately tiny table — the
     * eviction-under-pressure tests — is functional.
     */
    explicit ResultCache(std::size_t capacity_bytes);

    ResultCache(const ResultCache &) = delete;
    ResultCache &operator=(const ResultCache &) = delete;

    /**
     * Look up a fingerprint.  On a hit, `out` receives the recorded
     * outcome and the entry is untouched (no LRU maintenance — the
     * generation stamp ages whole campaigns, not individual probes).
     * Safe to call concurrently with probe() and store().
     */
    bool probe(std::uint64_t fingerprint, CachedOutcome &out);

    /**
     * Record an outcome.  Publishes with two relaxed atomic stores;
     * concurrent stores of the same fingerprint are idempotent (both
     * write the same outcome — equal fingerprints imply equal
     * outcomes), and a concurrent probe that reads a half-published
     * entry misses.
     */
    void store(std::uint64_t fingerprint, CachedOutcome out);

    /**
     * Start a new generation (wraps mod 256).  Entries of older
     * generations stay probeable but are evicted first when a cluster
     * fills; call once per campaign on a shared table.
     */
    void newGeneration();

    /** Sum of the per-shard counters (relaxed reads; exact once
     *  concurrent users have quiesced). */
    ResultCacheStats stats() const;

    /** Total entries across all shards. */
    std::size_t entryCount() const;

    /** Bytes of entry storage actually allocated. */
    std::size_t capacityBytes() const { return entryCount() * kEntryBytes; }

  private:
    /** One 16-byte packed entry.  `xkey` holds fingerprint ^ data;
     *  `data` packs valid/masked/earlyExit bits, the generation stamp,
     *  and the top 48 fingerprint bits as a second integrity tag. */
    struct Entry
    {
        std::atomic<std::uint64_t> xkey{0};
        std::atomic<std::uint64_t> data{0};
    };

    /** Per-shard counter block, cache-line padded so neighbouring
     *  shards cannot false-share. */
    struct alignas(64) ShardStats
    {
        std::atomic<std::uint64_t> hits{0};
        std::atomic<std::uint64_t> misses{0};
        std::atomic<std::uint64_t> stores{0};
        std::atomic<std::uint64_t> evictions{0};
    };

    Entry *cluster(std::uint64_t fingerprint, std::size_t &shard);

    std::unique_ptr<Entry[]> entries_;
    std::unique_ptr<ShardStats[]> stats_;
    std::size_t clustersPerShard_ = 0; //!< power of two
    std::atomic<std::uint32_t> generation_{0};
};

} // namespace fidelity

#endif // FIDELITY_SIM_RESULT_CACHE_HH
