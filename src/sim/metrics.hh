/**
 * @file
 * Structured run metrics: named counters, wall-clock timers, and
 * bounded histograms.
 *
 * A 46M-injection campaign needs a machine-readable record of what it
 * did — how many shards each worker ran, how often the incremental
 * engine fell back to dense recompute, where the wall time went — not
 * just printf lines.  MetricSet is the substrate: a registry of
 * dot-named instruments created on first use.
 *
 * Concurrency model: a MetricSet is NOT thread-safe and never needs to
 * be.  Each campaign worker accumulates into its own private set (no
 * locks, no contention on the injection hot path) and the coordinator
 * merges the per-worker sets at the end with mergeFrom().  Every
 * instrument accumulates in integers (counts, bucket counts, integer
 * nanoseconds), so the merged values are independent of merge order
 * and of the thread count that produced them.
 *
 * Serialization (writeJson) visits instruments in sorted-name order —
 * the same set contents always render to the same bytes.
 */

#ifndef FIDELITY_SIM_METRICS_HH
#define FIDELITY_SIM_METRICS_HH

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/json.hh"

namespace fidelity
{

/** Monotonic event counter. */
class Counter
{
  public:
    void add(std::uint64_t n = 1) { n_ += n; }

    std::uint64_t count() const { return n_; }

  private:
    std::uint64_t n_ = 0;
};

/**
 * Accumulated wall-clock time over any number of spans.  Spans are
 * stored as integer nanoseconds so cross-worker merges sum exactly.
 */
class Timer
{
  public:
    void
    addNs(std::int64_t ns)
    {
        ns_ += ns > 0 ? ns : 0;
        spans_ += 1;
    }

    std::int64_t ns() const { return ns_; }
    double seconds() const { return static_cast<double>(ns_) * 1e-9; }
    std::uint64_t spans() const { return spans_; }

    /** Sum another timer's spans into this one (exact: integer ns). */
    void
    mergeFrom(const Timer &other)
    {
        ns_ += other.ns_;
        spans_ += other.spans_;
    }

  private:
    std::int64_t ns_ = 0;
    std::uint64_t spans_ = 0;
};

/** RAII span: accumulates its lifetime into a Timer. */
class ScopedTimer
{
  public:
    explicit ScopedTimer(Timer &t)
        : t_(t), start_(std::chrono::steady_clock::now())
    {
    }

    ~ScopedTimer() { stop(); }

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

    /** End the span early (the destructor then does nothing). */
    void
    stop()
    {
        if (stopped_)
            return;
        stopped_ = true;
        t_.addNs(std::chrono::duration_cast<std::chrono::nanoseconds>(
                     std::chrono::steady_clock::now() - start_)
                     .count());
    }

  private:
    Timer &t_;
    std::chrono::steady_clock::time_point start_;
    bool stopped_ = false;
};

/**
 * Histogram over fixed, strictly increasing bucket edges.  A value
 * lands in the first bucket whose edge is >= the value; values above
 * the last edge land in the overflow bucket, so counts() has
 * edges().size() + 1 entries and every add() is counted somewhere.
 */
class Histogram
{
  public:
    Histogram() = default;
    explicit Histogram(std::vector<double> edges);

    void add(double v);

    const std::vector<double> &edges() const { return edges_; }
    const std::vector<std::uint64_t> &counts() const { return counts_; }
    std::uint64_t total() const { return total_; }

    /** Sum another histogram with identical edges into this one. */
    void mergeFrom(const Histogram &other);

  private:
    std::vector<double> edges_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

/**
 * Registry of named instruments, created on first use.  Use dotted
 * names ("inject.early_masked", "checkpoint.bytes") to build the
 * hierarchy; serialization keeps the flat sorted names.
 */
class MetricSet
{
  public:
    Counter &counter(const std::string &name);
    Timer &timer(const std::string &name);

    /**
     * Get-or-create a histogram.  The edges fix the shape on first
     * use; later calls (and merges) with different edges fatal.
     */
    Histogram &histogram(const std::string &name,
                         const std::vector<double> &edges);

    /** Sum every instrument of `other` into this set (creating any
     *  that are missing).  Integer accumulation makes the result
     *  independent of merge order. */
    void mergeFrom(const MetricSet &other);

    bool empty() const;

    /**
     * Render as one JSON object in sorted-name order: counters as
     * integers, timers as "<name>_s" seconds plus "<name>_spans",
     * histograms as {"edges": [...], "counts": [...]}.  The writer
     * must be positioned where a value may start (e.g. after key()).
     */
    void writeJson(JsonWriter &w) const;

    const std::map<std::string, Counter> &counters() const
    {
        return counters_;
    }
    const std::map<std::string, Timer> &timers() const { return timers_; }
    const std::map<std::string, Histogram> &histograms() const
    {
        return histograms_;
    }

  private:
    std::map<std::string, Counter> counters_;
    std::map<std::string, Timer> timers_;
    std::map<std::string, Histogram> histograms_;
};

} // namespace fidelity

#endif // FIDELITY_SIM_METRICS_HH
