/**
 * @file
 * Deterministic JSON emission and durable file publication.
 *
 * Every machine-readable artifact this framework writes — campaign run
 * manifests, the BENCH_*.json trajectory files — goes through this
 * module, so escaping, number formatting, and crash/concurrency safety
 * are implemented once:
 *
 *  - jsonEscape() renders any byte string as a valid JSON string body
 *    (quotes, backslashes, and control characters escaped; everything
 *    else passed through, so UTF-8 survives).
 *  - jsonNumber() renders a double as the *shortest* decimal that
 *    round-trips to the same bits — deterministic output without
 *    17-digit noise.  Non-finite values (which JSON cannot represent)
 *    render as null.
 *  - JsonWriter is a small streaming writer for nested documents with
 *    stable two-space indentation; JsonLineBuilder renders one flat
 *    object on a single line for the line-oriented trajectory files.
 *  - atomicWriteFile() publishes via temp-file + rename, optionally
 *    fsyncing file and directory, so readers (and crashes) see either
 *    the old document or the new one, never a torn prefix.
 *  - mergeJsonLines() is the merge-by-owner line writer behind the
 *    BENCH_*.json files (formerly an ad-hoc helper in bench/common.hh;
 *    it now escapes nothing itself — rows are pre-rendered — but
 *    publishes atomically, so two concurrent writers cannot corrupt
 *    the file).
 */

#ifndef FIDELITY_SIM_JSON_HH
#define FIDELITY_SIM_JSON_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace fidelity
{

/** Escape a byte string for inclusion inside JSON double quotes. */
std::string jsonEscape(std::string_view s);

/**
 * Shortest decimal rendering of `v` that strtod's back to the same
 * bits; "null" for NaN/Inf (JSON has no non-finite numbers).
 */
std::string jsonNumber(double v);

/**
 * Streaming writer for nested JSON documents.  The caller drives the
 * structure (beginObject/key/value/endObject); the writer owns commas,
 * quoting, escaping, and indentation, and panics on malformed
 * sequences (value without key inside an object, unbalanced ends).
 * Output is deterministic: same call sequence, same bytes.
 */
class JsonWriter
{
  public:
    JsonWriter() = default;

    void beginObject();
    void endObject();
    void beginArray();
    void endArray();

    /** Emit the key of the next value (objects only). */
    void key(std::string_view k);

    void value(std::string_view s);
    void value(const char *s) { value(std::string_view(s)); }
    void value(const std::string &s) { value(std::string_view(s)); }
    void value(double v);
    void value(std::uint64_t v);
    void value(std::int64_t v);
    void value(int v) { value(static_cast<std::int64_t>(v)); }
    void value(bool v);

    /** Convenience: key() + value(). */
    template <typename T>
    void
    field(std::string_view k, const T &v)
    {
        key(k);
        value(v);
    }

    /** The document so far; call after the last end*(). */
    const std::string &str() const;

  private:
    void separate();
    void indent();

    struct Frame
    {
        bool array = false;
        bool first = true;
    };

    std::string out_;
    std::vector<Frame> stack_;
    bool keyPending_ = false;
};

/**
 * One flat JSON object rendered on a single line — the row format of
 * the line-oriented BENCH_*.json files.  String values are escaped.
 */
class JsonLineBuilder
{
  public:
    JsonLineBuilder &field(std::string_view k, std::string_view v);
    JsonLineBuilder &field(std::string_view k, const char *v);
    JsonLineBuilder &field(std::string_view k, const std::string &v);
    JsonLineBuilder &field(std::string_view k, double v);
    JsonLineBuilder &field(std::string_view k, std::uint64_t v);
    JsonLineBuilder &field(std::string_view k, std::int64_t v);
    JsonLineBuilder &field(std::string_view k, int v);
    JsonLineBuilder &field(std::string_view k, bool v);

    /** Embed `rendered` verbatim as the value of `k` — for values
     *  that are already JSON (a nested manifest document, a
     *  pre-rendered number).  The caller vouches for validity. */
    JsonLineBuilder &rawField(std::string_view k, std::string_view rendered);

    /** The rendered `{...}` line (no trailing newline). */
    std::string str() const;

  private:
    std::string body_;
};

/**
 * Replace `path` with `content` atomically: the bytes go to
 * `path + ".tmp"`, which is renamed over `path`.  With `sync_to_disk`
 * the temp file is fsync'd before the rename and the parent directory
 * after it, so not even a power cut can publish a torn or empty file.
 * Fatals on any I/O failure.
 */
void atomicWriteFile(const std::string &path, std::string_view content,
                     bool sync_to_disk = false);

/**
 * Merge-by-owner line writer for the BENCH_*.json trajectory files
 * (one JSON object per line inside a plain array).  Lines from other
 * benches already in `path` are preserved; previous lines of `bench`
 * are replaced, so each binary owns its rows and re-runs stay
 * idempotent.  `rows` are fully-rendered object lines (use
 * JsonLineBuilder) that must embed `"bench": "<bench>"`.  The file is
 * republished atomically — a bench racing another bench (or CI
 * artifact collection) can lose the race but cannot corrupt the file.
 */
void mergeJsonLines(const std::string &path, const std::string &bench,
                    const std::vector<std::string> &rows);

/**
 * Extract the value of top-level key `k` from a JSON object document
 * (the text of the object/array/scalar, braces included).  A text-level
 * helper for tests and tools that compare manifest sections without a
 * full parser; it respects strings and nesting.  Returns "" when the
 * key is absent.
 */
std::string jsonSection(const std::string &doc, const std::string &key);

} // namespace fidelity

#endif // FIDELITY_SIM_JSON_HH
