#include "sim/json.hh"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "sim/logging.hh"

#if !defined(_WIN32)
#include <fcntl.h>
#include <unistd.h>
#endif

namespace fidelity
{

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\b':
            out += "\\b";
            break;
        case '\f':
            out += "\\f";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\r':
            out += "\\r";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "null";
    // Shortest decimal that round-trips: try increasing precision
    // until strtod returns the original bits.  Deterministic and free
    // of 17-digit noise for the common short values.
    char buf[40];
    for (int prec = 1; prec <= 17; ++prec) {
        std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
        if (std::strtod(buf, nullptr) == v)
            break;
    }
    return buf;
}

// ----- JsonWriter ---------------------------------------------------

void
JsonWriter::separate()
{
    if (stack_.empty())
        return;
    Frame &top = stack_.back();
    if (top.array) {
        if (!top.first)
            out_ += ",";
        out_ += "\n";
        indent();
        top.first = false;
    } else {
        panic_if(!keyPending_,
                 "JsonWriter: value inside an object requires key()");
        keyPending_ = false;
    }
}

void
JsonWriter::indent()
{
    out_.append(2 * stack_.size(), ' ');
}

void
JsonWriter::key(std::string_view k)
{
    panic_if(stack_.empty() || stack_.back().array,
             "JsonWriter: key() outside an object");
    panic_if(keyPending_, "JsonWriter: key() after key()");
    Frame &top = stack_.back();
    if (!top.first)
        out_ += ",";
    out_ += "\n";
    indent();
    top.first = false;
    out_ += "\"";
    out_ += jsonEscape(k);
    out_ += "\": ";
    keyPending_ = true;
}

void
JsonWriter::beginObject()
{
    separate();
    out_ += "{";
    stack_.push_back({false, true});
}

void
JsonWriter::endObject()
{
    panic_if(stack_.empty() || stack_.back().array || keyPending_,
             "JsonWriter: unbalanced endObject()");
    bool empty = stack_.back().first;
    stack_.pop_back();
    if (!empty) {
        out_ += "\n";
        indent();
    }
    out_ += "}";
}

void
JsonWriter::beginArray()
{
    separate();
    out_ += "[";
    stack_.push_back({true, true});
}

void
JsonWriter::endArray()
{
    panic_if(stack_.empty() || !stack_.back().array,
             "JsonWriter: unbalanced endArray()");
    bool empty = stack_.back().first;
    stack_.pop_back();
    if (!empty) {
        out_ += "\n";
        indent();
    }
    out_ += "]";
}

void
JsonWriter::value(std::string_view s)
{
    separate();
    out_ += "\"";
    out_ += jsonEscape(s);
    out_ += "\"";
}

void
JsonWriter::value(double v)
{
    separate();
    out_ += jsonNumber(v);
}

void
JsonWriter::value(std::uint64_t v)
{
    separate();
    out_ += std::to_string(v);
}

void
JsonWriter::value(std::int64_t v)
{
    separate();
    out_ += std::to_string(v);
}

void
JsonWriter::value(bool v)
{
    separate();
    out_ += v ? "true" : "false";
}

const std::string &
JsonWriter::str() const
{
    panic_if(!stack_.empty(),
             "JsonWriter: str() before the document is closed");
    return out_;
}

// ----- JsonLineBuilder ----------------------------------------------

JsonLineBuilder &
JsonLineBuilder::rawField(std::string_view k, std::string_view rendered)
{
    if (!body_.empty())
        body_ += ", ";
    body_ += "\"";
    body_ += jsonEscape(k);
    body_ += "\": ";
    body_ += rendered;
    return *this;
}

JsonLineBuilder &
JsonLineBuilder::field(std::string_view k, std::string_view v)
{
    return rawField(k, "\"" + jsonEscape(v) + "\"");
}

JsonLineBuilder &
JsonLineBuilder::field(std::string_view k, const char *v)
{
    return field(k, std::string_view(v));
}

JsonLineBuilder &
JsonLineBuilder::field(std::string_view k, const std::string &v)
{
    return field(k, std::string_view(v));
}

JsonLineBuilder &
JsonLineBuilder::field(std::string_view k, double v)
{
    return rawField(k, jsonNumber(v));
}

JsonLineBuilder &
JsonLineBuilder::field(std::string_view k, std::uint64_t v)
{
    return rawField(k, std::to_string(v));
}

JsonLineBuilder &
JsonLineBuilder::field(std::string_view k, std::int64_t v)
{
    return rawField(k, std::to_string(v));
}

JsonLineBuilder &
JsonLineBuilder::field(std::string_view k, int v)
{
    return rawField(k, std::to_string(v));
}

JsonLineBuilder &
JsonLineBuilder::field(std::string_view k, bool v)
{
    return rawField(k, v ? "true" : "false");
}

std::string
JsonLineBuilder::str() const
{
    return "  {" + body_ + "}";
}

// ----- Durable publication ------------------------------------------

namespace
{

#if !defined(_WIN32)
/** fsync an fd; filesystems without sync semantics report EINVAL /
 *  ENOTSUP for directories, which is not a durability failure. */
void
syncFd(int fd, const std::string &what)
{
    if (::fsync(fd) != 0 && errno != EINVAL && errno != ENOTSUP &&
        errno != EROFS)
        fatal("cannot fsync ", what, ": ", std::strerror(errno));
}
#endif

} // namespace

void
atomicWriteFile(const std::string &path, std::string_view content,
                bool sync_to_disk)
{
    fatal_if(path.empty(), "atomicWriteFile requires a path");
    const std::string tmp = path + ".tmp";

    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    fatal_if(!f, "cannot open temp file ", tmp, ": ",
             std::strerror(errno));
    const std::size_t wrote =
        content.empty() ? 0
                        : std::fwrite(content.data(), 1, content.size(), f);
    if (wrote != content.size() || std::fflush(f) != 0) {
        std::fclose(f);
        fatal("short write to temp file ", tmp);
    }
#if !defined(_WIN32)
    if (sync_to_disk)
        syncFd(fileno(f), tmp);
#endif
    fatal_if(std::fclose(f) != 0, "cannot close temp file ", tmp);

    fatal_if(std::rename(tmp.c_str(), path.c_str()) != 0, "cannot rename ",
             tmp, " over ", path, ": ", std::strerror(errno));

#if !defined(_WIN32)
    if (sync_to_disk) {
        // The rename itself must reach the disk, or a crash can leave
        // the directory pointing at neither version.
        std::size_t slash = path.find_last_of('/');
        const std::string dir =
            slash == std::string::npos ? "." : path.substr(0, slash + 1);
        int dfd = ::open(dir.c_str(), O_RDONLY);
        fatal_if(dfd < 0, "cannot open directory ", dir,
                 " to sync it: ", std::strerror(errno));
        syncFd(dfd, dir);
        ::close(dfd);
    }
#endif
}

void
mergeJsonLines(const std::string &path, const std::string &bench,
               const std::vector<std::string> &rows)
{
    // Keep other benches' lines.  The file is line-oriented by
    // construction, so a substring probe of the "bench" field is
    // enough to identify ownership.
    std::vector<std::string> kept;
    {
        std::ifstream in(path);
        std::string line;
        const std::string own = "\"bench\": \"" + jsonEscape(bench) + "\"";
        while (std::getline(in, line)) {
            if (line.find('{') == std::string::npos)
                continue;
            if (line.find(own) != std::string::npos)
                continue;
            if (!line.empty() && line.back() == ',')
                line.pop_back();
            kept.push_back(line);
        }
    }
    kept.insert(kept.end(), rows.begin(), rows.end());

    std::string out = "[\n";
    for (std::size_t i = 0; i < kept.size(); ++i) {
        out += kept[i];
        out += i + 1 < kept.size() ? ",\n" : "\n";
    }
    out += "]\n";
    atomicWriteFile(path, out);
}

std::string
jsonSection(const std::string &doc, const std::string &key)
{
    const std::string needle = "\"" + jsonEscape(key) + "\":";
    // Find the needle at object-key position (column start after
    // indentation) to avoid matching inside nested strings.
    std::size_t at = std::string::npos;
    std::size_t from = 0;
    while ((at = doc.find(needle, from)) != std::string::npos) {
        std::size_t bol = doc.find_last_of('\n', at);
        std::size_t line_start = bol == std::string::npos ? 0 : bol + 1;
        if (doc.find_first_not_of(' ', line_start) == at)
            break;
        from = at + 1;
    }
    if (at == std::string::npos)
        return "";

    std::size_t i = at + needle.size();
    while (i < doc.size() && (doc[i] == ' ' || doc[i] == '\n'))
        ++i;
    if (i >= doc.size())
        return "";

    if (doc[i] != '{' && doc[i] != '[') {
        // Scalar: runs to the next comma / newline / closing brace.
        std::size_t end = i;
        if (doc[i] == '"') {
            end = i + 1;
            while (end < doc.size() &&
                   (doc[end] != '"' || doc[end - 1] == '\\'))
                ++end;
            ++end;
        } else {
            while (end < doc.size() && doc[end] != ',' &&
                   doc[end] != '\n' && doc[end] != '}')
                ++end;
        }
        return doc.substr(i, end - i);
    }

    // Container: scan to the balanced close, skipping strings.
    const char open = doc[i];
    const char close = open == '{' ? '}' : ']';
    int depth = 0;
    bool in_string = false;
    for (std::size_t j = i; j < doc.size(); ++j) {
        char c = doc[j];
        if (in_string) {
            if (c == '\\')
                ++j;
            else if (c == '"')
                in_string = false;
            continue;
        }
        if (c == '"')
            in_string = true;
        else if (c == open)
            ++depth;
        else if (c == close && --depth == 0)
            return doc.substr(i, j - i + 1);
    }
    return "";
}

} // namespace fidelity
