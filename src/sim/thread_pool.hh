/**
 * @file
 * Fixed-size worker pool for embarrassingly parallel campaign work.
 *
 * Fault-injection campaigns fan out over independent (layer, category,
 * sample) shards; the pool runs those shards on a fixed set of worker
 * threads with a shared task queue.  Exceptions thrown inside a task are
 * captured and rethrown to the caller through the task's future, so a
 * panic-free error path (e.g. std::bad_alloc under memory pressure)
 * surfaces on the submitting thread instead of terminating a worker.
 */

#ifndef FIDELITY_SIM_THREAD_POOL_HH
#define FIDELITY_SIM_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace fidelity
{

/** A fixed pool of worker threads draining one task queue. */
class ThreadPool
{
  public:
    /**
     * Start the workers.
     * @param num_threads Worker count; 0 selects hardwareThreads().
     */
    explicit ThreadPool(int num_threads);

    /** Drains outstanding tasks, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Enqueue one task.  The returned future becomes ready when the
     * task finishes; if the task threw, future.get() rethrows the
     * exception on the caller's thread.
     */
    std::future<void> submit(std::function<void()> task);

    /**
     * Run fn(i) for every i in [0, n) across the pool and wait for all
     * of them.  Every task is allowed to finish even when one throws;
     * the first exception (in index order) is then rethrown.
     */
    void forEach(std::size_t n,
                 const std::function<void(std::size_t)> &fn);

    /**
     * Run fn(id) for every id in `ids` across the pool and wait for
     * all of them.  The sparse counterpart of forEach: the adaptive
     * campaign scheduler retires (layer, category) cells round by
     * round and resumes from checkpoints, so the live work items of a
     * round are an arbitrary subset of the shard plan, not a dense
     * [0, n) range.  Exception semantics match forEach (first
     * exception in `ids` order, after every task ran).
     */
    void forEachOf(const std::vector<std::size_t> &ids,
                   const std::function<void(std::size_t)> &fn);

    /** Number of worker threads. */
    int size() const { return static_cast<int>(workers_.size()); }

    /**
     * Index of the calling thread within its pool, in [0, size()), or
     * -1 on a thread that is not a pool worker.  Tasks use this to
     * claim a private per-worker accumulator slot (lock-free metric
     * accumulation in the campaign engine).
     */
    static int workerIndex();

    /**
     * Accumulator slot for the calling thread: its worker index if the
     * caller is one of THIS pool's workers, otherwise the reserved
     * slot size().  Unlike workerIndex(), this never returns an
     * out-of-range value, so a driver that emits metrics from the main
     * thread during plan/merge phases (or from another pool's worker)
     * gets a stable private slot instead of aliasing worker 0 or
     * indexing out of bounds.  Size accumulator arrays by slotCount().
     */
    int callerSlot() const;

    /** Number of accumulator slots callerSlot() can return:
     *  size() workers plus the reserved off-pool slot. */
    int slotCount() const { return size() + 1; }

    /** Concurrency the hardware advertises (at least 1). */
    static int hardwareThreads();

  private:
    void workerLoop(int index);

    std::vector<std::thread> workers_;
    std::queue<std::packaged_task<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stop_ = false;
};

} // namespace fidelity

#endif // FIDELITY_SIM_THREAD_POOL_HH
