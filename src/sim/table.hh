/**
 * @file
 * ASCII table rendering for the benchmark harnesses.
 *
 * Every bench binary regenerates one of the paper's tables or figures as
 * rows of text; Table gives them a consistent aligned rendering.
 */

#ifndef FIDELITY_SIM_TABLE_HH
#define FIDELITY_SIM_TABLE_HH

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace fidelity
{

/** A simple column-aligned ASCII table. */
class Table
{
  public:
    /** Construct with column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Append a row; must match the header count. */
    void addRow(std::vector<std::string> cells);

    /** Format a double with the given precision (helper for cells). */
    static std::string num(double v, int precision = 3);

    /** Format an integer cell. */
    static std::string num(std::uint64_t v);

    /** Format a percentage cell, e.g. 0.123 -> "12.3%". */
    static std::string pct(double fraction, int precision = 1);

    /** Render the full table with a rule under the header. */
    void print(std::ostream &os) const;

    std::size_t rows() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Print an underlined section heading (used between bench sections). */
void printHeading(std::ostream &os, const std::string &title);

} // namespace fidelity

#endif // FIDELITY_SIM_TABLE_HH
