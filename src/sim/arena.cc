#include "sim/arena.hh"

namespace fidelity
{

std::size_t
Arena::bytesHeld() const
{
    std::size_t bytes = 0;
    for (const auto &b : floatPool_)
        bytes += b.capacity() * sizeof(float);
    for (const auto &b : intPool_)
        bytes += b.capacity() * sizeof(std::int32_t);
    return bytes;
}

void
Arena::clear()
{
    floatPool_.clear();
    intPool_.clear();
}

Arena &
Arena::local()
{
    thread_local Arena arena;
    return arena;
}

} // namespace fidelity
