#include "sim/arena.hh"

namespace fidelity
{

std::size_t
Arena::bytesHeld() const
{
    std::size_t bytes = 0;
    for (const auto &b : floatPool_)
        bytes += b.capacity() * sizeof(float);
    for (const auto &b : intPool_)
        bytes += b.capacity() * sizeof(std::int32_t);
    for (const auto &b : shortPool_)
        bytes += b.capacity() * sizeof(std::int16_t);
    for (const auto &b : longPool_)
        bytes += b.capacity() * sizeof(std::int64_t);
    return bytes;
}

void
Arena::clear()
{
    floatPool_.clear();
    intPool_.clear();
    shortPool_.clear();
    longPool_.clear();
}

Arena &
Arena::local()
{
    thread_local Arena arena;
    return arena;
}

} // namespace fidelity
