#include "sim/stats.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "sim/logging.hh"

namespace fidelity
{

void
Proportion::add(bool success)
{
    trials_ += 1;
    if (success)
        successes_ += 1;
}

void
Proportion::add(std::uint64_t successes, std::uint64_t trials)
{
    panic_if(successes > trials, "Proportion batch has successes > trials");
    // An unchecked wrap here would silently leave successes_ > trials_,
    // making mean() > 1 and p(1-p) negative — every interval query
    // would then return NaN.  Counter saturation is a framework bug
    // (no campaign runs 2^64 trials), so fail loudly instead.
    panic_if(trials > std::numeric_limits<std::uint64_t>::max() - trials_,
             "Proportion trial counter overflow");
    successes_ += successes;
    trials_ += trials;
}

double
Proportion::mean() const
{
    if (trials_ == 0)
        return 0.0;
    return static_cast<double>(successes_) / static_cast<double>(trials_);
}

double
Proportion::halfWidth(double z) const
{
    panic_if(z < 0.0, "z must be non-negative, got ", z);
    if (trials_ == 0)
        return 0.0;
    double n = static_cast<double>(trials_);
    double p = mean();
    double z2 = z * z;
    return (z / (1.0 + z2 / n)) *
           std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n));
}

double
Proportion::lower(double z) const
{
    if (trials_ == 0)
        return 0.0;
    double n = static_cast<double>(trials_);
    double p = mean();
    double z2 = z * z;
    double centre = (p + z2 / (2.0 * n)) / (1.0 + z2 / n);
    return std::max(0.0, centre - halfWidth(z));
}

double
Proportion::upper(double z) const
{
    if (trials_ == 0)
        return 1.0;
    double n = static_cast<double>(trials_);
    double p = mean();
    double z2 = z * z;
    double centre = (p + z2 / (2.0 * n)) / (1.0 + z2 / n);
    return std::min(1.0, centre + halfWidth(z));
}

std::string
Proportion::str() const
{
    std::ostringstream os;
    os.precision(4);
    os << std::fixed << mean() << " [" << lower() << ", " << upper()
       << "] (n=" << trials_ << ")";
    return os.str();
}

void
RunningStat::add(double x)
{
    if (count_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    count_ += 1;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

double
RunningStat::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

std::uint64_t
samplesForHalfWidth(double p, double half_width, double z)
{
    panic_if(half_width <= 0.0, "half_width must be positive");
    panic_if(p < 0.0 || p > 1.0, "p must be a probability, got ", p);
    panic_if(z <= 0.0, "z must be positive, got ", z);
    double n = z * z * p * (1.0 - p) / (half_width * half_width);
    // Casting a double above 2^64 (tiny half_width) to uint64_t is
    // undefined behaviour; saturate instead.
    constexpr auto max64 = std::numeric_limits<std::uint64_t>::max();
    if (n >= static_cast<double>(max64))
        return max64;
    return static_cast<std::uint64_t>(std::ceil(n));
}

} // namespace fidelity
