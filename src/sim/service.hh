/**
 * @file
 * Distributed campaign service: coordinator, worker, and daemon.
 *
 * One box, N processes.  A coordinator owns the deterministic
 * fixed-schedule shard plan of a campaign (core/campaign's
 * fixedShardPlan) and leases contiguous ordinal ranges of it to
 * worker processes over the sim/service_proto wire protocol (Unix or
 * TCP sockets).  Workers execute their ranges with
 * executeFixedShardRange — the exact streams an in-process run would
 * draw — and ship the shard journals back as FIDCKPT bytes (the
 * checkpoint encoding).  The coordinator merges by handing the
 * complete journal set to runCampaign as an in-memory resume
 * snapshot, so the merge, campaignChecksum, and the manifest
 * "results" section go through the single-process code path
 * unchanged: a 4-worker run is bit-identical to a 1-process run by
 * construction, and the tests assert it.
 *
 * Failure model: a worker that disconnects or goes silent past the
 * lease timeout has its leased ranges re-issued to other workers;
 * duplicate RESULTs (a slow worker racing a re-issue) are idempotent.
 * The coordinator checkpoints merged journals to disk, so a killed
 * coordinator restarts with resumeFrom and re-executes only the
 * unmerged remainder.  Adaptive campaigns (targetHalfWidth > 0) have
 * no static plan and are served in-process by the daemon instead.
 *
 * See DESIGN.md §14 for the frame grammar, the lease state machine,
 * and the merge-determinism argument.
 */

#ifndef FIDELITY_SIM_SERVICE_HH
#define FIDELITY_SIM_SERVICE_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/campaign.hh"
#include "core/manifest.hh"
#include "nn/network.hh"

namespace fidelity
{

// ----- Campaign requests -------------------------------------------

/**
 * One campaign request — the flat JSON object clients submit to the
 * daemon and coordinators hand to workers in SPEC frames.  Every
 * field that participates in campaignConfigHash is here, plus the
 * network/input/metric identity, so any process can rebuild the
 * identical campaign from the JSON alone.
 */
struct ServiceRequest
{
    std::string network = "resnet";
    Precision precision = Precision::FP16;
    std::string metric = "top1"; //!< top1|bleu10|bleu20|det10|det20
    std::uint64_t netSeed = 2020;
    std::uint64_t inputSeed = 2021;

    int samplesPerCategory = 120;
    std::uint64_t seed = 1;
    int shardGrain = 32;
    double outputClampAbs = 0.0;

    /** Adaptive target; > 0 is in-process (daemon) only. */
    double targetHalfWidth = 0.0;

    int threads = 1; //!< executor threads (in-process / merge side)
    int batchWidth = 8;

    /**
     * Optional tenant label for daemon admission control: the
     * deficit-round-robin scheduler balances queued requests across
     * tenants, and per-tenant wait/served metrics are keyed by it.
     * Not part of the campaign identity (excluded from
     * campaignConfigHash).  Empty means the shared "default" tenant.
     * Restricted to [A-Za-z0-9_-], at most 64 chars, so client input
     * cannot mangle metric names or status JSON.
     */
    std::string tenant;
};

/**
 * Parse and validate a request object (sim/parse's checked JSON
 * scanner underneath).  Unknown keys, non-flat values, bad numbers,
 * unknown network/precision/metric names: all return false with the
 * diagnostic in `err` — the daemon turns that into an error response,
 * never a dead process.
 */
bool tryParseServiceRequest(const std::string &json, ServiceRequest &req,
                            std::string &err);

/** Render a request as its canonical flat JSON object. */
std::string serviceRequestJson(const ServiceRequest &req);

/** Build the request's network (precision set, calibrated when an
 *  integer mode asks for it). */
Network buildServiceNetwork(const ServiceRequest &req);

/** The request's input tensor. */
Tensor serviceInput(const ServiceRequest &req);

/** The request's correctness metric (the name was validated at
 *  parse time; fatals on an unknown name). */
CorrectnessFn serviceMetric(const ServiceRequest &req);

/** The CampaignConfig a request describes (identity knobs only;
 *  paths/topology are the caller's). */
CampaignConfig campaignConfigFor(const ServiceRequest &req);

// ----- Lease bookkeeping -------------------------------------------

/**
 * Transport-free lease state machine over the shard plan, tested
 * deterministically with injected clocks.  The plan is cut into
 * chunks of `leaseShards` consecutive ordinals; each chunk is
 * Unleased, Leased (to a named worker, with a deadline), or Merged.
 * Expired or abandoned leases revert to Unleased and are re-issued;
 * a RESULT for an already-Merged chunk is reported as a duplicate
 * and dropped (idempotence under lease races).
 */
class LeaseBook
{
  public:
    enum class ChunkState { Unleased, Leased, Merged };

    LeaseBook(std::uint64_t planShards, std::uint64_t leaseShards);

    /**
     * Lease the lowest available chunk to `worker`: expired leases
     * revert first, then Unleased chunks are considered.  Returns
     * false when nothing is available right now (all chunks Leased or
     * Merged).
     */
    bool lease(const std::string &worker, double nowSec,
               double timeoutSec, std::uint64_t &first,
               std::uint64_t &count);

    enum class ResultOutcome {
        Merged,    //!< first RESULT for this chunk; caller merges it
        Duplicate, //!< chunk already merged; drop idempotently
        Unknown    //!< no chunk with these bounds; protocol violation
    };

    /** Record the arrival of a RESULT for [first, first + count). */
    ResultOutcome complete(std::uint64_t first, std::uint64_t count);

    /** Extend every lease `worker` holds. */
    void heartbeat(const std::string &worker, double nowSec,
                   double timeoutSec);

    /** Revert every lease `worker` holds (disconnect/death).
     *  @return chunks reverted. */
    std::uint64_t release(const std::string &worker);

    /** Mark the chunks fully covered by [first, first + count) as
     *  Merged (coordinator restart: journals restored from disk). */
    void markMerged(std::uint64_t first, std::uint64_t count);

    bool allMerged() const;
    std::uint64_t mergedChunks() const;
    std::uint64_t chunkCount() const;

    /** Leases that expired and were re-issued (telemetry). */
    std::uint64_t expiredLeases() const { return expired_; }

  private:
    struct Chunk
    {
        std::uint64_t first = 0;
        std::uint64_t count = 0;
        ChunkState state = ChunkState::Unleased;
        std::string owner;
        double deadline = 0.0;
    };

    void expireStale(double nowSec);

    std::vector<Chunk> chunks_;
    std::uint64_t expired_ = 0;
};

// ----- Coordinator --------------------------------------------------

struct CoordinatorOptions
{
    /** "unix:<path>" or "tcp:<host>:<port>". */
    std::string listenAddr;

    /** Shards per lease chunk. */
    std::uint64_t leaseShards = 8;

    /** Seconds of silence after which a worker's leases re-issue. */
    double leaseTimeoutSec = 30.0;

    /** Journal checkpoint of merged chunks (restart safety). */
    std::string checkpointPath;
    double checkpointEverySec = 30.0;

    /** Resume merged journals from this snapshot when it exists. */
    std::string resumeFrom;

    /** Manifest path handed to the merge-side runCampaign. */
    std::string reportPath;

    /** Stop (checkpoint + return incomplete) after this many chunks
     *  merged; 0 = run to completion.  The deterministic "crash" hook
     *  of the coordinator-restart tests. */
    std::uint64_t stopAfterMergedChunks = 0;
};

/** What a coordinator run produced. */
struct CoordinatorRun
{
    bool complete = false;

    /** Valid only when complete: the merged campaign, bit-identical
     *  to a single-process run of the same request. */
    CampaignResult result;

    /** Worker fan-out telemetry (also in the manifest). */
    WorkerTopology topology;
};

/**
 * Serve one campaign's shard plan to connecting workers and merge the
 * journals.  Blocks until the plan is fully merged (or the stop hook
 * fires).  Worker connections are one thread each; worker death at
 * any point only delays completion — the campaign finishes as long as
 * at least one worker eventually connects.
 */
CoordinatorRun runCampaignCoordinator(const ServiceRequest &req,
                                      const CoordinatorOptions &opts);

// ----- Worker -------------------------------------------------------

struct WorkerOptions
{
    /** Coordinator address ("unix:<path>" or "tcp:<host>:<port>"). */
    std::string connectAddr;

    std::string name = "worker";

    /** Reported in HELLO (telemetry only; execution is
     *  single-threaded — worker processes are the parallelism axis). */
    int threads = 1;

    /** Seconds between HEARTBEAT frames. */
    double heartbeatSec = 5.0;

    /** Seconds to keep retrying the initial connect (workers may
     *  start before their coordinator listens). */
    double connectTimeoutSec = 20.0;

    /** Fault hook: raise(SIGKILL) after sending this many RESULTs
     *  (0 = never).  Deterministic worker death for the resilience
     *  tests and the bench's kill leg. */
    std::uint64_t dieAfterResults = 0;
};

/**
 * Run one worker process: connect, HELLO/SPEC/READY, then
 * LEASE → execute → RESULT until DONE or DRAIN.  Returns the process
 * exit code (0 on DONE/DRAIN; fatals on protocol violations — a
 * worker belongs to its coordinator).
 */
int runServiceWorker(const WorkerOptions &opts);

// ----- Daemon -------------------------------------------------------

struct DaemonOptions
{
    /** Client-facing listen address. */
    std::string listenAddr;

    /** Campaign worker threads — campaigns served concurrently.
     *  (--workers is an alias; this name predates the pool.) */
    int maxConcurrent = 2;

    /**
     * Admitted-but-unstarted request cap across all tenants.  A
     * request arriving at a full queue is answered immediately with a
     * typed busy error frame (encodeBusyError), never left on a hung
     * socket.
     */
    int maxQueue = 32;

    /**
     * Deficit-round-robin quantum, in request-cost units, added to a
     * tenant's deficit per scheduler visit.  Request cost is its
     * samples_per_category (floor 1), so tenants submitting heavy
     * campaigns drain proportionally slower than light ones.
     */
    int drrQuantum = 256;

    /** Directory for per-campaign checkpoint snapshots, keyed by
     *  config hash — a killed daemon restarts and resumes every
     *  campaign from its last checkpoint window.  Empty disables. */
    std::string stateDir;

    /** checkpointEverySec of served campaigns. */
    double checkpointEverySec = 5.0;

    /** Campaigns served per daemon lifetime cap (0 = unlimited);
     *  test hook so daemon tests terminate without signals. */
    std::uint64_t maxRequests = 0;

    /** Seconds a connection may take to deliver its full request
     *  frame before intake closes it (slow-loris shedding). */
    double recvDeadlineSec = 30.0;

    /** Seconds a response write may stall on an unread socket before
     *  the worker gives up on that client. */
    double sendDeadlineSec = 30.0;

    /** Test hook: sleep this long inside each popped request before
     *  executing it, so queue-occupancy tests (drain rejection,
     *  fairness, single-flight overlap) are timing-robust. */
    double testServiceDelaySec = 0.0;
};

/**
 * Serve campaign requests until drained: clients connect and send
 * REQUEST {json}; the daemon answers RESPONSE {json manifest +
 * checksum} or ERROR {diagnostic} (malformed requests are answered,
 * never fatal).  A DRAIN frame stops intake, waits for in-flight
 * campaigns, and returns.  Returns the process exit code.
 */
int runServiceDaemon(const DaemonOptions &opts);

/**
 * Client helper: connect to a daemon, send one REQUEST (or DRAIN when
 * `drain`), and return the peer's RESPONSE/ERROR text in `response`.
 * False (with `err`) on connect or protocol failure.
 */
bool submitServiceRequest(const std::string &connectAddr,
                          const std::string &requestJson, bool drain,
                          std::string &response, std::string &err);

/**
 * Ask a daemon for its admission/queue status: a RESPONSE carrying a
 * JSON object with queue depth, worker/in-flight counts, rejection
 * counters, and the per-tenant wait/service metrics.  False (with
 * `err`) on connect or protocol failure.
 */
bool queryServiceStatus(const std::string &connectAddr,
                        std::string &response, std::string &err);

#if !defined(_WIN32)

/**
 * Write the whole buffer with a poll-based deadline (seconds; < 0
 * waits forever).  Non-blocking sends interleaved with POLLOUT waits,
 * so a stalled-but-open peer costs at most the deadline, never a
 * pinned thread.  False on a dead peer or an expired deadline.
 * Every daemon/coordinator/worker frame write goes through this.
 */
bool sendBytesWithDeadline(int fd, std::string_view bytes,
                           double timeoutSec);

#endif // !defined(_WIN32)

} // namespace fidelity

#endif // FIDELITY_SIM_SERVICE_HH
