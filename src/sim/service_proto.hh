/**
 * @file
 * Wire protocol of the distributed campaign service (sim/service).
 *
 * Transport-free layer: frames and typed payloads as byte strings,
 * with a streaming decoder and non-fatal parsers, so the protocol is
 * testable (and fuzzable) without a socket in sight.
 *
 * Framing: `[u32 length][u8 type][payload]`, little-endian host
 * integers (the service fans out across processes of one box — the
 * same single-architecture contract as the FIDCKPT snapshot format).
 * `length` counts the type byte plus the payload and is capped at
 * kMaxFrameBytes, so a malicious or corrupt length yields a
 * diagnostic, never a multi-GB allocation.
 *
 * Conversation (worker side):
 *
 *   worker → HELLO  {version, name, threads}
 *   coord  → SPEC   {configHash, requestJson}
 *   worker → READY  {configHash}        // recomputed; must match
 *   coord  → LEASE  {first, count}      // shard-plan ordinal range
 *   worker → RESULT {first, count, journal = FIDCKPT bytes}
 *   ...LEASE/RESULT until the plan is merged...
 *   coord  → DONE | DRAIN               // DRAIN: finish, then exit
 *   worker → HEARTBEAT {}               // any time, resets the lease
 *
 * Client side (daemon requests): REQUEST {json} → RESPONSE {json} or
 * ERROR {message}.
 */

#ifndef FIDELITY_SIM_SERVICE_PROTO_HH
#define FIDELITY_SIM_SERVICE_PROTO_HH

#include <cstdint>
#include <string>
#include <string_view>

namespace fidelity
{

/** Bumped on any incompatible frame or payload change. */
inline constexpr std::uint64_t kServiceProtocolVersion = 1;

/** Cap on `length` (type byte + payload).  A RESULT journal of a
 *  maximal lease is far below this; anything above is corruption. */
inline constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

enum class FrameType : std::uint8_t {
    Hello = 1,
    Spec = 2,
    Ready = 3,
    Lease = 4,
    Result = 5,
    Heartbeat = 6,
    Done = 7,
    Request = 8,
    Response = 9,
    Error = 10,
    Drain = 11,
};

/** Human name of a frame type ("HELLO"); "UNKNOWN" off the enum. */
const char *frameTypeName(FrameType t);

/** One decoded frame. */
struct Frame
{
    FrameType type = FrameType::Error;
    std::string payload;
};

/** Serialize one frame (fatals if the payload exceeds the cap —
 *  that is a caller bug, not peer input). */
std::string encodeFrame(FrameType type, std::string_view payload);

enum class FrameDecodeStatus {
    Complete, //!< `out` holds a frame, `consumed` bytes were used
    NeedMore, //!< prefix of a valid frame; read more and retry
    Malformed //!< protocol violation; `err` says what, drop the peer
};

/**
 * Streaming decode of the first frame in `bytes`.  NeedMore on a
 * torn prefix (including a bare length word), Malformed on a zero or
 * over-cap length or an unknown frame type.  `consumed` is written
 * only on Complete.  Never allocates from the declared length before
 * the bytes are actually present.
 */
FrameDecodeStatus tryDecodeFrame(std::string_view bytes, Frame &out,
                                 std::size_t &consumed, std::string &err);

// ----- Payload primitives ------------------------------------------

/** Appends u64s and length-prefixed strings to a payload. */
class PayloadWriter
{
  public:
    void u64(std::uint64_t v);
    void str(std::string_view s); //!< u64 byte count + bytes

    const std::string &bytes() const { return out_; }
    std::string take() { return std::move(out_); }

  private:
    std::string out_;
};

/** Bounded cursor over a payload: every read is checked against the
 *  remaining byte count; string lengths are validated before any
 *  allocation. */
class PayloadReader
{
  public:
    explicit PayloadReader(std::string_view bytes) : bytes_(bytes) {}

    bool u64(std::uint64_t &v);
    bool str(std::string &s);
    bool atEnd() const { return pos_ == bytes_.size(); }

  private:
    std::string_view bytes_;
    std::size_t pos_ = 0;
};

// ----- Typed payloads ----------------------------------------------
//
// Each tryParse* checks the frame type, reads every field, and
// requires the payload to be fully consumed — a RESULT frame with
// trailing bytes is as malformed as a truncated one.  All return
// false with a diagnostic in `err`; the caller names the peer.

struct HelloPayload
{
    std::uint64_t version = kServiceProtocolVersion;
    std::string worker; //!< worker name used in diagnostics/telemetry
    std::uint64_t threads = 1;
};

struct SpecPayload
{
    std::uint64_t configHash = 0;
    std::string requestJson; //!< flat service-request object
};

struct ReadyPayload
{
    std::uint64_t configHash = 0; //!< recomputed by the worker
};

struct LeasePayload
{
    std::uint64_t first = 0; //!< first shard-plan ordinal
    std::uint64_t count = 0;
};

struct ResultPayload
{
    std::uint64_t first = 0;
    std::uint64_t count = 0;
    std::string journal; //!< FIDCKPT bytes (sim/checkpoint encoding)
};

std::string encodeHello(const HelloPayload &p);
std::string encodeSpec(const SpecPayload &p);
std::string encodeReady(const ReadyPayload &p);
std::string encodeLease(const LeasePayload &p);
std::string encodeResult(const ResultPayload &p);
std::string encodeHeartbeat();
std::string encodeDone();
std::string encodeDrain();
std::string encodeRequest(std::string_view json);
std::string encodeResponse(std::string_view json);
std::string encodeErrorFrame(std::string_view message);

bool tryParseHello(const Frame &f, HelloPayload &p, std::string &err);
bool tryParseSpec(const Frame &f, SpecPayload &p, std::string &err);
bool tryParseReady(const Frame &f, ReadyPayload &p, std::string &err);
bool tryParseLease(const Frame &f, LeasePayload &p, std::string &err);
bool tryParseResult(const Frame &f, ResultPayload &p, std::string &err);

/** REQUEST/RESPONSE/ERROR carry one raw string. */
bool tryParseText(const Frame &f, FrameType expect, std::string &text,
                  std::string &err);

// ----- Typed error frames ------------------------------------------
//
// The daemon's admission control answers with ERROR frames whose text
// is a flat JSON object {"status": <code>, ...} so clients can tell a
// *policy* rejection (queue full, draining) from a request diagnostic
// (bad JSON, unknown network) without string-matching prose.  Plain
// diagnostic ERROR frames stay free text; typedErrorStatus returns
// false for them.

/** ERROR frame whose text is {"status": "busy", "queue_depth": …,
 *  "max_queue": …} — the admission queue is at capacity. */
std::string encodeBusyError(std::uint64_t queueDepth,
                            std::uint64_t maxQueue);

/** ERROR frame whose text is {"status": "draining"} — the daemon is
 *  shutting down and rejected the request or a queued entry. */
std::string encodeDrainingError();

/** Extract the "status" code from a typed error text.  False when the
 *  text is not a typed error (free-text diagnostics, garbage). */
bool typedErrorStatus(const std::string &text, std::string &code);

} // namespace fidelity

#endif // FIDELITY_SIM_SERVICE_PROTO_HH
