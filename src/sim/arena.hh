/**
 * @file
 * Per-thread scratch-buffer arena for the injection hot path.
 *
 * Every software fault injection re-executes part of a network, and the
 * layer kernels need transient conversion buffers (operands rounded
 * into the active precision's stored form).  Allocating those per call
 * dominates small-layer injections, so each worker thread owns an
 * arena of pooled buffers: a lease checks a buffer out, the kernel uses
 * it, and destruction returns the storage — with its grown capacity —
 * to the pool.  Steady-state campaigns therefore run the conversion
 * paths without touching the allocator.
 *
 * All pooled buffers (and the packed-weight buffers, which share the
 * AlignedVec alias) are 64-byte aligned so the SIMD kernels may use
 * aligned vector loads on the packed streams and operand gathers; a
 * static_assert below plus tests/test_simd.cc guard the guarantee.
 *
 * The arena is intentionally thread-local (Arena::local()): leases are
 * only ever used within one kernel invocation on the leasing thread,
 * so no synchronisation is needed.
 */

#ifndef FIDELITY_SIM_ARENA_HH
#define FIDELITY_SIM_ARENA_HH

#include <cstddef>
#include <cstdint>
#include <new>
#include <utility>
#include <vector>

namespace fidelity
{

/** Arena/pack buffer alignment: one cache line, >= any vector load. */
inline constexpr std::size_t kBufferAlign = 64;

/** Minimal std allocator handing out kBufferAlign-aligned storage. */
template <typename T>
struct AlignedAlloc
{
    using value_type = T;

    static_assert((kBufferAlign & (kBufferAlign - 1)) == 0,
                  "alignment must be a power of two");
    static_assert(kBufferAlign >= alignof(T),
                  "alignment must not weaken the type's own");

    AlignedAlloc() = default;
    template <typename U>
    AlignedAlloc(const AlignedAlloc<U> &)
    {
    }

    T *
    allocate(std::size_t n)
    {
        return static_cast<T *>(::operator new(
            n * sizeof(T), std::align_val_t{kBufferAlign}));
    }

    void
    deallocate(T *p, std::size_t)
    {
        ::operator delete(p, std::align_val_t{kBufferAlign});
    }

    template <typename U>
    bool
    operator==(const AlignedAlloc<U> &) const
    {
        return true;
    }
    template <typename U>
    bool
    operator!=(const AlignedAlloc<U> &) const
    {
        return false;
    }
};

/** 64-byte-aligned vector: arena pools and packed-weight buffers. */
template <typename T>
using AlignedVec = std::vector<T, AlignedAlloc<T>>;

/** Pool of reusable scratch buffers owned by one worker thread. */
class Arena
{
  public:
    Arena() = default;
    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    /**
     * RAII checkout of a pooled aligned vector<T>.  The buffer is
     * sized to the request (contents unspecified — callers overwrite)
     * and returned to the owning arena, capacity intact, on
     * destruction.
     */
    template <typename T>
    class Lease
    {
      public:
        Lease(Arena &arena, AlignedVec<T> &&buf)
            : arena_(&arena), buf_(std::move(buf))
        {
        }

        ~Lease()
        {
            if (arena_)
                arena_->give(std::move(buf_));
        }

        Lease(Lease &&o) noexcept
            : arena_(std::exchange(o.arena_, nullptr)),
              buf_(std::move(o.buf_))
        {
        }

        Lease(const Lease &) = delete;
        Lease &operator=(const Lease &) = delete;
        Lease &operator=(Lease &&) = delete;

        T *data() { return buf_.data(); }
        const T *data() const { return buf_.data(); }
        std::size_t size() const { return buf_.size(); }
        T &operator[](std::size_t i) { return buf_[i]; }
        const T &operator[](std::size_t i) const { return buf_[i]; }
        AlignedVec<T> &vec() { return buf_; }

      private:
        Arena *arena_;
        AlignedVec<T> buf_;
    };

    /** Check out a float buffer of n elements. */
    Lease<float> floats(std::size_t n) { return lease(floatPool_, n); }

    /** Check out an int32 buffer of n elements. */
    Lease<std::int32_t>
    ints(std::size_t n)
    {
        return lease(intPool_, n);
    }

    /** Check out an int16 buffer of n elements (narrow operands). */
    Lease<std::int16_t>
    shorts(std::size_t n)
    {
        return lease(shortPool_, n);
    }

    /** Check out an int64 buffer of n elements (accumulators). */
    Lease<std::int64_t>
    longs(std::size_t n)
    {
        return lease(longPool_, n);
    }

    /** Buffers currently parked in the pools. */
    std::size_t
    pooledBuffers() const
    {
        return floatPool_.size() + intPool_.size() +
               shortPool_.size() + longPool_.size();
    }

    /** Bytes of capacity held by parked buffers. */
    std::size_t bytesHeld() const;

    /** Checkouts that reused pooled storage. */
    std::uint64_t reuses() const { return reuses_; }

    /** Checkouts that had to create a fresh buffer. */
    std::uint64_t allocations() const { return allocations_; }

    /** Drop all pooled storage (buffers on lease are unaffected). */
    void clear();

    /** The calling thread's arena, created on first use. */
    static Arena &local();

  private:
    template <typename T>
    Lease<T>
    lease(std::vector<AlignedVec<T>> &pool, std::size_t n)
    {
        AlignedVec<T> buf;
        if (!pool.empty()) {
            buf = std::move(pool.back());
            pool.pop_back();
            ++reuses_;
        } else {
            ++allocations_;
        }
        buf.resize(n);
        return Lease<T>(*this, std::move(buf));
    }

    void give(AlignedVec<float> &&buf)
    {
        floatPool_.push_back(std::move(buf));
    }

    void give(AlignedVec<std::int32_t> &&buf)
    {
        intPool_.push_back(std::move(buf));
    }

    void give(AlignedVec<std::int16_t> &&buf)
    {
        shortPool_.push_back(std::move(buf));
    }

    void give(AlignedVec<std::int64_t> &&buf)
    {
        longPool_.push_back(std::move(buf));
    }

    std::vector<AlignedVec<float>> floatPool_;
    std::vector<AlignedVec<std::int32_t>> intPool_;
    std::vector<AlignedVec<std::int16_t>> shortPool_;
    std::vector<AlignedVec<std::int64_t>> longPool_;
    std::uint64_t reuses_ = 0;
    std::uint64_t allocations_ = 0;
};

} // namespace fidelity

#endif // FIDELITY_SIM_ARENA_HH
