/**
 * @file
 * Per-thread scratch-buffer arena for the injection hot path.
 *
 * Every software fault injection re-executes part of a network, and the
 * layer kernels need transient conversion buffers (operands rounded
 * into the active precision's stored form).  Allocating those per call
 * dominates small-layer injections, so each worker thread owns an
 * arena of pooled buffers: a lease checks a buffer out, the kernel uses
 * it, and destruction returns the storage — with its grown capacity —
 * to the pool.  Steady-state campaigns therefore run the conversion
 * paths without touching the allocator.
 *
 * The arena is intentionally thread-local (Arena::local()): leases are
 * only ever used within one kernel invocation on the leasing thread,
 * so no synchronisation is needed.
 */

#ifndef FIDELITY_SIM_ARENA_HH
#define FIDELITY_SIM_ARENA_HH

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace fidelity
{

/** Pool of reusable scratch buffers owned by one worker thread. */
class Arena
{
  public:
    Arena() = default;
    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    /**
     * RAII checkout of a pooled vector<T>.  The buffer is sized to the
     * request (contents unspecified — callers overwrite) and returned
     * to the owning arena, capacity intact, on destruction.
     */
    template <typename T>
    class Lease
    {
      public:
        Lease(Arena &arena, std::vector<T> &&buf)
            : arena_(&arena), buf_(std::move(buf))
        {
        }

        ~Lease()
        {
            if (arena_)
                arena_->give(std::move(buf_));
        }

        Lease(Lease &&o) noexcept
            : arena_(std::exchange(o.arena_, nullptr)),
              buf_(std::move(o.buf_))
        {
        }

        Lease(const Lease &) = delete;
        Lease &operator=(const Lease &) = delete;
        Lease &operator=(Lease &&) = delete;

        T *data() { return buf_.data(); }
        const T *data() const { return buf_.data(); }
        std::size_t size() const { return buf_.size(); }
        T &operator[](std::size_t i) { return buf_[i]; }
        const T &operator[](std::size_t i) const { return buf_[i]; }
        std::vector<T> &vec() { return buf_; }

      private:
        Arena *arena_;
        std::vector<T> buf_;
    };

    /** Check out a float buffer of n elements. */
    Lease<float> floats(std::size_t n) { return lease(floatPool_, n); }

    /** Check out an int32 buffer of n elements. */
    Lease<std::int32_t>
    ints(std::size_t n)
    {
        return lease(intPool_, n);
    }

    /** Buffers currently parked in the pools. */
    std::size_t
    pooledBuffers() const
    {
        return floatPool_.size() + intPool_.size();
    }

    /** Bytes of capacity held by parked buffers. */
    std::size_t bytesHeld() const;

    /** Checkouts that reused pooled storage. */
    std::uint64_t reuses() const { return reuses_; }

    /** Checkouts that had to create a fresh buffer. */
    std::uint64_t allocations() const { return allocations_; }

    /** Drop all pooled storage (buffers on lease are unaffected). */
    void clear();

    /** The calling thread's arena, created on first use. */
    static Arena &local();

  private:
    template <typename T>
    Lease<T>
    lease(std::vector<std::vector<T>> &pool, std::size_t n)
    {
        std::vector<T> buf;
        if (!pool.empty()) {
            buf = std::move(pool.back());
            pool.pop_back();
            ++reuses_;
        } else {
            ++allocations_;
        }
        buf.resize(n);
        return Lease<T>(*this, std::move(buf));
    }

    void give(std::vector<float> &&buf)
    {
        floatPool_.push_back(std::move(buf));
    }

    void give(std::vector<std::int32_t> &&buf)
    {
        intPool_.push_back(std::move(buf));
    }

    std::vector<std::vector<float>> floatPool_;
    std::vector<std::vector<std::int32_t>> intPool_;
    std::uint64_t reuses_ = 0;
    std::uint64_t allocations_ = 0;
};

} // namespace fidelity

#endif // FIDELITY_SIM_ARENA_HH
