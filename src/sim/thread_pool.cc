#include "sim/thread_pool.hh"

#include <exception>
#include <utility>

#include "sim/logging.hh"

namespace fidelity
{

namespace
{

// Set once at worker startup; -1 everywhere else (the submitting
// thread never runs pool tasks).
thread_local int tlsWorkerIndex = -1;

// The pool the calling thread works for, so callerSlot() can tell "a
// worker of this pool" apart from "a worker of some other pool" — the
// latter must use the reserved slot, not its foreign index.
thread_local const ThreadPool *tlsPool = nullptr;

} // namespace

int
ThreadPool::workerIndex()
{
    return tlsWorkerIndex;
}

int
ThreadPool::callerSlot() const
{
    if (tlsPool == this && tlsWorkerIndex >= 0)
        return tlsWorkerIndex;
    return size();
}

int
ThreadPool::hardwareThreads()
{
    unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<int>(n);
}

ThreadPool::ThreadPool(int num_threads)
{
    if (num_threads == 0)
        num_threads = hardwareThreads();
    fatal_if(num_threads < 0, "ThreadPool requires a non-negative "
             "thread count, got ", num_threads);
    workers_.reserve(static_cast<std::size_t>(num_threads));
    for (int i = 0; i < num_threads; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

std::future<void>
ThreadPool::submit(std::function<void()> task)
{
    panic_if(!task, "ThreadPool::submit requires a callable task");
    std::packaged_task<void()> packaged(std::move(task));
    std::future<void> fut = packaged.get_future();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        panic_if(stop_, "ThreadPool::submit after shutdown");
        queue_.push(std::move(packaged));
    }
    cv_.notify_one();
    return fut;
}

void
ThreadPool::forEach(std::size_t n,
                    const std::function<void(std::size_t)> &fn)
{
    std::vector<std::future<void>> futures;
    futures.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        futures.push_back(submit([&fn, i] { fn(i); }));

    // Let every task run to completion before rethrowing, so no task
    // is left referencing caller state after forEach returns.
    std::exception_ptr first;
    for (std::future<void> &f : futures) {
        try {
            f.get();
        } catch (...) {
            if (!first)
                first = std::current_exception();
        }
    }
    if (first)
        std::rethrow_exception(first);
}

void
ThreadPool::forEachOf(const std::vector<std::size_t> &ids,
                      const std::function<void(std::size_t)> &fn)
{
    std::vector<std::future<void>> futures;
    futures.reserve(ids.size());
    for (std::size_t id : ids)
        futures.push_back(submit([&fn, id] { fn(id); }));

    std::exception_ptr first;
    for (std::future<void> &f : futures) {
        try {
            f.get();
        } catch (...) {
            if (!first)
                first = std::current_exception();
        }
    }
    if (first)
        std::rethrow_exception(first);
}

void
ThreadPool::workerLoop(int index)
{
    tlsWorkerIndex = index;
    tlsPool = this;
    for (;;) {
        std::packaged_task<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stop_ set and nothing left to drain
            task = std::move(queue_.front());
            queue_.pop();
        }
        task(); // exceptions land in the task's future
    }
}

} // namespace fidelity
