/**
 * @file
 * Lightweight statistics helpers for fault-injection campaigns.
 *
 * The paper reports proportions (masking probabilities, failure rates)
 * estimated from statistical fault injection with 95% confidence
 * intervals; Proportion implements the Wilson interval used to size and
 * report those estimates.  RunningStat accumulates streaming moments for
 * perturbation-magnitude studies (Key result 5).
 */

#ifndef FIDELITY_SIM_STATS_HH
#define FIDELITY_SIM_STATS_HH

#include <cstdint>
#include <string>

namespace fidelity
{

/** A Bernoulli proportion estimated from counted trials. */
class Proportion
{
  public:
    /** Record one trial outcome. */
    void add(bool success);

    /** Record a batch of trials. */
    void add(std::uint64_t successes, std::uint64_t trials);

    std::uint64_t successes() const { return successes_; }
    std::uint64_t trials() const { return trials_; }

    /** Point estimate successes/trials (0 when no trials). */
    double mean() const;

    /** Wilson score interval half-width at the given z (default 95%). */
    double halfWidth(double z = 1.96) const;

    /** Lower bound of the Wilson interval, clamped to [0, 1]. */
    double lower(double z = 1.96) const;

    /** Upper bound of the Wilson interval, clamped to [0, 1]. */
    double upper(double z = 1.96) const;

    /** Render as "p [lo, hi] (n=...)" for reports. */
    std::string str() const;

  private:
    std::uint64_t successes_ = 0;
    std::uint64_t trials_ = 0;
};

/** Streaming mean/variance/min/max accumulator (Welford). */
class RunningStat
{
  public:
    void add(double x);

    std::uint64_t count() const { return count_; }
    double mean() const { return count_ ? mean_ : 0.0; }
    double variance() const;
    double stddev() const;
    double min() const { return min_; }
    double max() const { return max_; }

  private:
    std::uint64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Number of Bernoulli samples needed so a proportion estimate around p
 * has the given absolute half-width at the given z.
 */
std::uint64_t samplesForHalfWidth(double p, double half_width,
                                  double z = 1.96);

} // namespace fidelity

#endif // FIDELITY_SIM_STATS_HH
