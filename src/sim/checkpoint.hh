/**
 * @file
 * Crash-safe campaign snapshots (checkpoint/resume).
 *
 * A multi-hour injection campaign must survive its process dying.  The
 * campaign engine journals the outputs of every completed shard — the
 * per-cell counters and perturbation samples, keyed by the shard's
 * position in the deterministic shard plan — into a snapshot file that
 * is replaced atomically (write-to-temp + rename), so a reader never
 * observes a torn file.  Resuming rebuilds the shard plan from the
 * config (the plan and every RNG stream are pure functions of the
 * config), skips the journaled shards, and executes only the rest;
 * the merged result is bit-identical to an uninterrupted run.
 *
 * A config hash stored in the snapshot guards against resuming with a
 * config that would produce a different plan or different streams.
 */

#ifndef FIDELITY_SIM_CHECKPOINT_HH
#define FIDELITY_SIM_CHECKPOINT_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace fidelity
{

/**
 * FNV-1a mixer for building config fingerprints.  Doubles are mixed by
 * bit pattern, so two configs hash equal only when the values that
 * define the campaign's sample identity are bit-identical.
 */
class HashMixer
{
  public:
    void mix(std::uint64_t v);
    void mix(double v);
    void mix(const std::string &s);

    std::uint64_t value() const { return h_; }

  private:
    std::uint64_t h_ = 1469598103934665603ULL;
};

/** Journaled output of one completed shard of the shard plan. */
struct ShardRecord
{
    std::uint64_t ordinal = 0; //!< position in the deterministic plan
    std::uint64_t cell = 0;    //!< index into CampaignResult::cells
    std::uint64_t maskedCount = 0;
    std::uint64_t trials = 0;

    /** (|delta|, caused output error) perturbation samples. */
    std::vector<std::pair<double, bool>> samples;
};

/** Everything a campaign needs to restart mid-flight. */
struct CampaignSnapshot
{
    /** Fingerprint of the sample-identity config fields. */
    std::uint64_t configHash = 0;

    /** Completed shards, sorted by ordinal. */
    std::vector<ShardRecord> shards;
};

/**
 * Serialize a snapshot to the FIDCKPT byte format.  This is both the
 * on-disk checkpoint format (writeSnapshot) and the shard-journal
 * payload of the service protocol's RESULT frames (sim/service) — one
 * encoder, so a worker's wire journal and a local checkpoint are
 * byte-compatible.  Host-endian: journals travel between processes of
 * one architecture (the crash-recovery and one-box fan-out use cases).
 */
std::string encodeSnapshot(const CampaignSnapshot &snap);

/**
 * Decode FIDCKPT bytes, or report why they are malformed.  `what`
 * names the source in diagnostics — a file path for checkpoints, the
 * peer for wire journals ("RESULT journal from worker-2").  Every
 * declared count is validated against the remaining byte count before
 * any allocation, so corrupt input yields an error message, never
 * std::bad_alloc on a multi-GB reserve().  On failure `snap` is
 * unspecified and `err` holds the diagnostic.
 */
bool tryDecodeSnapshot(const char *data, std::size_t size,
                       const std::string &what, CampaignSnapshot &snap,
                       std::string &err);

/**
 * Decode FIDCKPT bytes or exit through fatal() with `what` (the path
 * or peer) named — the strict variant behind readSnapshot and the
 * worker-side LEASE/RESULT handling.
 */
CampaignSnapshot decodeSnapshot(std::string_view bytes,
                                const std::string &what);

/**
 * Persist a snapshot atomically and durably: the bytes go to
 * `path + ".tmp"`, which is fsync'd and then renamed over `path`,
 * after which the parent directory is fsync'd.  On POSIX the rename is
 * atomic, so a concurrent reader (or a crash at any point) sees either
 * the old snapshot or the complete new one, never a prefix — and once
 * this function returns, the publish survives a power cut.
 *
 * @return Snapshot size in bytes (observability bookkeeping).
 */
std::uint64_t writeSnapshot(const std::string &path,
                            const CampaignSnapshot &snap);

/**
 * Load a snapshot previously written by writeSnapshot.
 * Fatals on a missing file, a foreign/truncated file, or an
 * unsupported version; use snapshotExists() to probe first.  Every
 * on-disk count is validated against the file size before any
 * allocation, so a corrupt snapshot exits through fatal() with the
 * path named, never through std::bad_alloc.
 */
CampaignSnapshot readSnapshot(const std::string &path);

/** True when `path` exists (the resume-if-present probe). */
bool snapshotExists(const std::string &path);

} // namespace fidelity

#endif // FIDELITY_SIM_CHECKPOINT_HH
