#include "sim/service_proto.hh"

#include <cstring>
#include <map>
#include <sstream>

#include "sim/json.hh"
#include "sim/logging.hh"
#include "sim/parse.hh"

namespace fidelity
{

namespace
{

template <typename... Args>
std::string
describe(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

bool
knownFrameType(std::uint8_t t)
{
    return t >= static_cast<std::uint8_t>(FrameType::Hello) &&
           t <= static_cast<std::uint8_t>(FrameType::Drain);
}

/** Shared tail of every typed parser: right frame type, then fully
 *  consumed payload. */
bool
checkType(const Frame &f, FrameType expect, std::string &err)
{
    if (f.type != expect) {
        err = describe("expected a ", frameTypeName(expect),
                       " frame, got ", frameTypeName(f.type));
        return false;
    }
    return true;
}

bool
checkDrained(const PayloadReader &in, FrameType type, std::string &err)
{
    if (!in.atEnd()) {
        err = describe(frameTypeName(type),
                       " frame has trailing payload bytes");
        return false;
    }
    return true;
}

std::string
truncated(FrameType type)
{
    return describe(frameTypeName(type), " frame payload is truncated");
}

} // namespace

const char *
frameTypeName(FrameType t)
{
    switch (t) {
    case FrameType::Hello: return "HELLO";
    case FrameType::Spec: return "SPEC";
    case FrameType::Ready: return "READY";
    case FrameType::Lease: return "LEASE";
    case FrameType::Result: return "RESULT";
    case FrameType::Heartbeat: return "HEARTBEAT";
    case FrameType::Done: return "DONE";
    case FrameType::Request: return "REQUEST";
    case FrameType::Response: return "RESPONSE";
    case FrameType::Error: return "ERROR";
    case FrameType::Drain: return "DRAIN";
    }
    return "UNKNOWN";
}

std::string
encodeFrame(FrameType type, std::string_view payload)
{
    fatal_if(payload.size() > kMaxFrameBytes - 1,
             "service frame payload of ", payload.size(),
             " bytes exceeds the ", kMaxFrameBytes, "-byte frame cap");
    const std::uint32_t length =
        static_cast<std::uint32_t>(payload.size() + 1);
    std::string out;
    out.reserve(sizeof(length) + length);
    char lenbuf[sizeof(length)];
    std::memcpy(lenbuf, &length, sizeof(length));
    out.append(lenbuf, sizeof(lenbuf));
    out.push_back(static_cast<char>(type));
    out.append(payload.data(), payload.size());
    return out;
}

FrameDecodeStatus
tryDecodeFrame(std::string_view bytes, Frame &out, std::size_t &consumed,
               std::string &err)
{
    std::uint32_t length = 0;
    if (bytes.size() < sizeof(length))
        return FrameDecodeStatus::NeedMore;
    std::memcpy(&length, bytes.data(), sizeof(length));
    if (length == 0) {
        err = "frame declares a zero length (a frame holds at least "
              "its type byte)";
        return FrameDecodeStatus::Malformed;
    }
    if (length > kMaxFrameBytes) {
        err = describe("frame declares ", length,
                       " bytes, above the ", kMaxFrameBytes,
                       "-byte frame cap");
        return FrameDecodeStatus::Malformed;
    }
    if (bytes.size() - sizeof(length) < length)
        return FrameDecodeStatus::NeedMore;
    const std::uint8_t type =
        static_cast<std::uint8_t>(bytes[sizeof(length)]);
    if (!knownFrameType(type)) {
        err = describe("unknown frame type ",
                       static_cast<unsigned>(type));
        return FrameDecodeStatus::Malformed;
    }
    out.type = static_cast<FrameType>(type);
    out.payload.assign(bytes.data() + sizeof(length) + 1, length - 1);
    consumed = sizeof(length) + length;
    return FrameDecodeStatus::Complete;
}

void
PayloadWriter::u64(std::uint64_t v)
{
    char buf[sizeof(v)];
    std::memcpy(buf, &v, sizeof(v));
    out_.append(buf, sizeof(buf));
}

void
PayloadWriter::str(std::string_view s)
{
    u64(s.size());
    out_.append(s.data(), s.size());
}

bool
PayloadReader::u64(std::uint64_t &v)
{
    if (bytes_.size() - pos_ < sizeof(v))
        return false;
    std::memcpy(&v, bytes_.data() + pos_, sizeof(v));
    pos_ += sizeof(v);
    return true;
}

bool
PayloadReader::str(std::string &s)
{
    std::uint64_t n = 0;
    if (!u64(n))
        return false;
    // The declared length is bounded by the bytes actually present
    // (the frame layer already capped those), so a corrupt length can
    // never drive the allocation below.
    if (n > bytes_.size() - pos_)
        return false;
    s.assign(bytes_.data() + pos_, static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return true;
}

std::string
encodeHello(const HelloPayload &p)
{
    PayloadWriter w;
    w.u64(p.version);
    w.str(p.worker);
    w.u64(p.threads);
    return encodeFrame(FrameType::Hello, w.bytes());
}

std::string
encodeSpec(const SpecPayload &p)
{
    PayloadWriter w;
    w.u64(p.configHash);
    w.str(p.requestJson);
    return encodeFrame(FrameType::Spec, w.bytes());
}

std::string
encodeReady(const ReadyPayload &p)
{
    PayloadWriter w;
    w.u64(p.configHash);
    return encodeFrame(FrameType::Ready, w.bytes());
}

std::string
encodeLease(const LeasePayload &p)
{
    PayloadWriter w;
    w.u64(p.first);
    w.u64(p.count);
    return encodeFrame(FrameType::Lease, w.bytes());
}

std::string
encodeResult(const ResultPayload &p)
{
    PayloadWriter w;
    w.u64(p.first);
    w.u64(p.count);
    w.str(p.journal);
    return encodeFrame(FrameType::Result, w.bytes());
}

std::string
encodeHeartbeat()
{
    return encodeFrame(FrameType::Heartbeat, {});
}

std::string
encodeDone()
{
    return encodeFrame(FrameType::Done, {});
}

std::string
encodeDrain()
{
    return encodeFrame(FrameType::Drain, {});
}

std::string
encodeRequest(std::string_view json)
{
    PayloadWriter w;
    w.str(json);
    return encodeFrame(FrameType::Request, w.bytes());
}

std::string
encodeResponse(std::string_view json)
{
    PayloadWriter w;
    w.str(json);
    return encodeFrame(FrameType::Response, w.bytes());
}

std::string
encodeErrorFrame(std::string_view message)
{
    PayloadWriter w;
    w.str(message);
    return encodeFrame(FrameType::Error, w.bytes());
}

bool
tryParseHello(const Frame &f, HelloPayload &p, std::string &err)
{
    if (!checkType(f, FrameType::Hello, err))
        return false;
    PayloadReader in(f.payload);
    if (!in.u64(p.version) || !in.str(p.worker) || !in.u64(p.threads)) {
        err = truncated(f.type);
        return false;
    }
    return checkDrained(in, f.type, err);
}

bool
tryParseSpec(const Frame &f, SpecPayload &p, std::string &err)
{
    if (!checkType(f, FrameType::Spec, err))
        return false;
    PayloadReader in(f.payload);
    if (!in.u64(p.configHash) || !in.str(p.requestJson)) {
        err = truncated(f.type);
        return false;
    }
    return checkDrained(in, f.type, err);
}

bool
tryParseReady(const Frame &f, ReadyPayload &p, std::string &err)
{
    if (!checkType(f, FrameType::Ready, err))
        return false;
    PayloadReader in(f.payload);
    if (!in.u64(p.configHash)) {
        err = truncated(f.type);
        return false;
    }
    return checkDrained(in, f.type, err);
}

bool
tryParseLease(const Frame &f, LeasePayload &p, std::string &err)
{
    if (!checkType(f, FrameType::Lease, err))
        return false;
    PayloadReader in(f.payload);
    if (!in.u64(p.first) || !in.u64(p.count)) {
        err = truncated(f.type);
        return false;
    }
    return checkDrained(in, f.type, err);
}

bool
tryParseResult(const Frame &f, ResultPayload &p, std::string &err)
{
    if (!checkType(f, FrameType::Result, err))
        return false;
    PayloadReader in(f.payload);
    if (!in.u64(p.first) || !in.u64(p.count) || !in.str(p.journal)) {
        err = truncated(f.type);
        return false;
    }
    return checkDrained(in, f.type, err);
}

bool
tryParseText(const Frame &f, FrameType expect, std::string &text,
             std::string &err)
{
    if (!checkType(f, expect, err))
        return false;
    PayloadReader in(f.payload);
    if (!in.str(text)) {
        err = truncated(f.type);
        return false;
    }
    return checkDrained(in, f.type, err);
}

std::string
encodeBusyError(std::uint64_t queueDepth, std::uint64_t maxQueue)
{
    JsonLineBuilder b;
    b.field("status", "busy");
    b.field("queue_depth", queueDepth);
    b.field("max_queue", maxQueue);
    return encodeErrorFrame(b.str());
}

std::string
encodeDrainingError()
{
    JsonLineBuilder b;
    b.field("status", "draining");
    return encodeErrorFrame(b.str());
}

bool
typedErrorStatus(const std::string &text, std::string &code)
{
    std::map<std::string, std::string> fields;
    std::string err;
    if (!parseJsonObject(text, fields, err))
        return false;
    auto it = fields.find("status");
    if (it == fields.end())
        return false;
    code = it->second;
    return true;
}

} // namespace fidelity
