/**
 * @file
 * Deterministic pseudo-random number generation for fault-site sampling.
 *
 * Every stochastic decision in the framework (fault-site selection, bit
 * position, injection cycle, random control-fault values) draws from an
 * explicitly seeded Rng so campaigns are exactly reproducible.  The core
 * generator is PCG32 (O'Neill), which is small, fast, and statistically
 * sound for this purpose.
 */

#ifndef FIDELITY_SIM_RNG_HH
#define FIDELITY_SIM_RNG_HH

#include <cstdint>
#include <vector>

namespace fidelity
{

/** PCG32-based random number generator with convenience draws. */
class Rng
{
  public:
    /** Construct from a 64-bit seed; stream constant fixed. */
    explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL);

    /** Next raw 32-bit draw. */
    std::uint32_t next32();

    /** Next raw 64-bit draw (two 32-bit draws). */
    std::uint64_t next64();

    /** Uniform integer in [0, bound) without modulo bias. Bound > 0. */
    std::uint32_t below(std::uint32_t bound);

    /** Uniform integer in [lo, hi] inclusive. Requires lo <= hi. */
    std::int64_t range(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Standard normal draw (Box-Muller, cached pair). */
    double normal();

    /** Normal draw with the given mean and standard deviation. */
    double normal(double mean, double stddev);

    /** Bernoulli draw with probability p of true. */
    bool chance(double p);

    /**
     * Pick a uniformly random element index of a non-empty container.
     * Panics (naming this call site) on an empty container; containers
     * larger than 2^32 - 1 elements are routed through the 64-bit
     * range() draw instead of being truncated.
     */
    template <typename Container>
    std::size_t
    pick(const Container &c)
    {
        const auto n = static_cast<std::uint64_t>(c.size());
        panicIfEmptyPick(n);
        if (n <= 0xffffffffULL)
            return below(static_cast<std::uint32_t>(n));
        return static_cast<std::size_t>(
            range(0, static_cast<std::int64_t>(n - 1)));
    }

    /**
     * Sample an index according to non-negative weights.
     * @param weights Non-negative weights, at least one strictly positive.
     * @return Index drawn with probability weight[i] / sum(weights).
     */
    std::size_t weighted(const std::vector<double> &weights);

    /** Derive an independent child generator (for per-worker streams). */
    Rng fork();

  private:
    /** Out-of-line empty-container check so this header stays
     *  independent of the logging macros. */
    static void panicIfEmptyPick(std::uint64_t n);

    std::uint64_t state_;
    bool haveCachedNormal_ = false;
    double cachedNormal_ = 0.0;
};

} // namespace fidelity

#endif // FIDELITY_SIM_RNG_HH
