#include "sim/logging.hh"

#include <cstdlib>
#include <iostream>
#include <mutex>

namespace fidelity
{

namespace
{

// Campaign workers log concurrently; serialising each message keeps
// whole lines atomic on the stream (iostreams only guarantee absence
// of data races between insertions, not line integrity).
std::mutex ioMutex;

// Depth, not a flag: capture scopes may nest (a request handler
// calling a helper that opens its own scope).
thread_local int fatalCaptureDepth = 0;

} // namespace

ScopedFatalCapture::ScopedFatalCapture()
{
    ++fatalCaptureDepth;
}

ScopedFatalCapture::~ScopedFatalCapture()
{
    --fatalCaptureDepth;
}

bool
ScopedFatalCapture::active()
{
    return fatalCaptureDepth > 0;
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "panic: " << msg << "\n  at " << file << ":" << line
              << std::endl;
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    if (ScopedFatalCapture::active())
        throw FatalError(msg);
    std::cerr << "fatal: " << msg << "\n  at " << file << ":" << line
              << std::endl;
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    std::lock_guard<std::mutex> lock(ioMutex);
    std::cerr << "warn: " + msg + "\n" << std::flush;
}

void
informImpl(const std::string &msg)
{
    std::lock_guard<std::mutex> lock(ioMutex);
    std::cout << "info: " + msg + "\n" << std::flush;
}

} // namespace fidelity
