#include "sim/logging.hh"

#include <cstdlib>
#include <iostream>
#include <mutex>

namespace fidelity
{

namespace
{

// Campaign workers log concurrently; serialising each message keeps
// whole lines atomic on the stream (iostreams only guarantee absence
// of data races between insertions, not line integrity).
std::mutex ioMutex;

} // namespace

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "panic: " << msg << "\n  at " << file << ":" << line
              << std::endl;
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "fatal: " << msg << "\n  at " << file << ":" << line
              << std::endl;
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    std::lock_guard<std::mutex> lock(ioMutex);
    std::cerr << "warn: " + msg + "\n" << std::flush;
}

void
informImpl(const std::string &msg)
{
    std::lock_guard<std::mutex> lock(ioMutex);
    std::cout << "info: " + msg + "\n" << std::flush;
}

} // namespace fidelity
